"""Tests for Rocket-as-a-service (:mod:`repro.serve`).

Six layers:

- wire protocol units: framing (round trip, clean vs mid-frame EOF,
  corrupted lengths), the workload codec for all four shapes (with
  ``FilteredPairs`` predicate parity and pickling), the result codec,
  and typed errors crossing the wire;
- tenant directory resolution: JSON loading, allow-list mode, the
  default template, validation;
- job registry: replayable stream cursors, ack/TTL retention, tenant
  isolation of job ids;
- end-to-end serving on a real socket: result **and** stream parity
  with in-process execution for every workload shape under two
  concurrent tenants, reconnect-by-job-id after a client disconnect,
  quota admission, 3:1 weighted fair sharing, failure/cancel
  propagation, graceful drain;
- the ``SessionClosed`` close-race contract on both backends;
- the CLI surface: ``serve`` + ``submit`` subprocess round trip with
  SIGTERM drain, and clean exit codes on connection refused.
"""

import json
import pickle
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro.core.session import RocketSession, RunHandle, RunState, SessionClosed
from repro.core.workload import AllPairs, Bipartite, DeltaPairs, FilteredPairs
from repro.serve import (
    ProtocolError,
    QuotaExceeded,
    RemoteJobFailed,
    RocketServer,
    ServeConnectionError,
    ServeError,
    ServerDraining,
    TenantConfig,
    TenantDirectory,
    UnknownJob,
    UnknownTenant,
    connect,
)
from repro.serve import protocol
from repro.serve.registry import JobRegistry

from tests.test_cluster_runtime import SumApp, make_store
from tests.test_multijob import SlowApp, make_backend


def make_server(
    backend="local", n_items=10, app=None, tenants=None, **server_kw
):
    """A served session on an ephemeral port; caller closes the server."""
    store, keys = make_store(n_items)
    runtime = make_backend(backend, store, app=app)
    session = RocketSession._wrap(runtime, policy="fair")
    server = RocketServer(session, keys, tenants=tenants, **server_kw).start()
    return server, store, keys


def reference_results(store, keys, workload, app=None):
    """The in-process ground truth for a served workload."""
    session = RocketSession._wrap(make_backend("local", store, app=app))
    try:
        return session.submit(workload).result()
    finally:
        session.close()


# ----------------------------------------------------------------------
# Protocol units


class TestFraming:
    def pair(self):
        a, b = socket.socketpair()
        return a, b

    def test_round_trip(self):
        a, b = self.pair()
        try:
            message = {"op": "hello", "tenant": "t", "n": [1, 2.5, "x"]}
            protocol.send_message(a, message)
            assert protocol.recv_message(b) == message
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = self.pair()
        a.close()
        try:
            assert protocol.recv_message(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = self.pair()
        try:
            a.sendall(struct.pack(">I", 100) + b'{"tru')
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                protocol.recv_message(b)
        finally:
            b.close()

    def test_corrupt_length_rejected_without_allocating(self):
        a, b = self.pair()
        try:
            a.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_non_object_payload_rejected(self):
        a, b = self.pair()
        try:
            payload = json.dumps([1, 2, 3]).encode()
            a.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="objects"):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()


class TestWorkloadCodec:
    KEYS = [f"k{i:02d}" for i in range(8)]

    def round_trip(self, workload):
        rebuilt = protocol.workload_from_wire(
            json.loads(json.dumps(protocol.workload_to_wire(workload)))
        )
        assert rebuilt.n_pairs == workload.n_pairs
        assert sorted(map(tuple, rebuilt.pairs())) == sorted(
            map(tuple, workload.pairs())
        )
        return rebuilt

    def test_all_pairs(self):
        self.round_trip(AllPairs(self.KEYS))

    def test_bipartite(self):
        self.round_trip(Bipartite(self.KEYS[:3], self.KEYS[3:]))

    def test_delta(self):
        self.round_trip(DeltaPairs(self.KEYS[:6], self.KEYS[6:]))

    def test_filtered_predicate_parity(self):
        # The wire form evaluates the predicate client-side; the
        # rebuilt PairSetFilter must accept exactly the same pairs.
        pred = lambda a, b: (int(a[-2:]) + int(b[-2:])) % 3 != 0
        rebuilt = self.round_trip(FilteredPairs(self.KEYS, pred))
        assert isinstance(rebuilt, FilteredPairs)

    def test_rebuilt_filter_is_picklable(self):
        # The cluster backend forks workloads to worker processes; a
        # served FilteredPairs must survive pickling (the original
        # lambda would not).
        rebuilt = protocol.workload_from_wire(
            protocol.workload_to_wire(FilteredPairs(self.KEYS, lambda a, b: a < b))
        )
        clone = pickle.loads(pickle.dumps(rebuilt))
        assert sorted(map(tuple, clone.pairs())) == sorted(
            map(tuple, rebuilt.pairs())
        )

    def test_non_scalar_keys_rejected(self):
        with pytest.raises(ProtocolError, match="scalar"):
            protocol.workload_to_wire(AllPairs([("tuple", "key"), ("x", "y")]))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown workload kind"):
            protocol.workload_from_wire({"kind": "mystery"})


class TestResultAndErrorCodec:
    def test_matrix_round_trip(self):
        workload = AllPairs(["a", "b", "c"])
        matrix = workload.make_result()
        matrix.set("a", "b", 1.5)
        matrix.set("a", "c", -2.0)
        matrix.set("b", "c", 0.25)
        rebuilt = protocol.matrix_from_wire(
            json.loads(json.dumps(protocol.matrix_to_wire(matrix)))
        )
        assert sorted(map(tuple, rebuilt.items())) == sorted(map(tuple, matrix.items()))
        assert rebuilt.is_complete()

    @pytest.mark.parametrize(
        "exc_type",
        [ProtocolError, UnknownTenant, UnknownJob, QuotaExceeded, ServerDraining],
    )
    def test_errors_round_trip_typed(self, exc_type):
        response = protocol.error_response(exc_type("weights exhausted"))
        with pytest.raises(exc_type, match="weights exhausted"):
            protocol.raise_error_response(response)

    def test_unknown_code_degrades_to_serve_error(self):
        with pytest.raises(ServeError):
            protocol.raise_error_response({"ok": False, "error": "??", "message": "m"})


# ----------------------------------------------------------------------
# Tenants


class TestTenantDirectory:
    DOC = {
        "tenants": [
            {"name": "alice", "weight": 3.0, "max_active": 4},
            {"name": "bob", "max_pending_pairs": 2000},
        ],
        "allow_unknown": False,
    }

    def test_from_dict_and_resolution(self):
        directory = TenantDirectory.from_dict(self.DOC)
        alice = directory.resolve("alice")
        assert alice.weight == 3.0 and alice.max_active == 4
        assert directory.resolve("bob").max_pending_pairs == 2000
        with pytest.raises(UnknownTenant, match="allow-list"):
            directory.resolve("mallory")

    def test_permissive_default_template(self):
        directory = TenantDirectory.from_dict(
            {"default": {"weight": 0.5, "max_active": 2}}
        )
        anon = directory.resolve("walk-in")
        assert anon.name == "walk-in"
        assert anon.weight == 0.5 and anon.max_active == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="weight"):
            TenantConfig("t", weight=0.0)
        with pytest.raises(ValueError, match="max_active"):
            TenantConfig("t", max_active=0)
        with pytest.raises(ValueError, match="duplicate"):
            TenantDirectory([TenantConfig("a"), TenantConfig("a")])
        with pytest.raises(ValueError, match="unknown tenant config keys"):
            TenantDirectory.from_dict({"tenant": []})

    def test_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(self.DOC))
        assert TenantDirectory.from_file(path).resolve("alice").weight == 3.0


# ----------------------------------------------------------------------
# Registry


def finished_handle(keys, values):
    """A handle driven to DONE through the backend hooks."""
    handle = RunHandle(AllPairs(keys))
    handle._mark_running(None)
    for (i, j), value in values.items():
        handle._record(i, j, value)
    handle._finish(RunState.DONE)
    return handle


class TestJobRegistry:
    KEYS = ["a", "b", "c"]

    def test_stream_log_replays_from_any_cursor(self):
        registry = JobRegistry()
        record = registry.register(
            "t", finished_handle(self.KEYS, {(0, 1): 1.0, (0, 2): 2.0, (1, 2): 3.0})
        )
        assert record.wait_drained(timeout=10.0)
        full, drained = record.read_triples(0, 100)
        assert drained and len(full) == 3
        tail, drained = record.read_triples(2, 100)
        assert drained and tail == full[2:]
        # Replays do not consume: a second reader sees the same log.
        again, _ = record.read_triples(0, 100)
        assert again == full

    def test_tenant_isolation_and_unknown_ids(self):
        registry = JobRegistry()
        record = registry.register("alice", finished_handle(self.KEYS, {(0, 1): 1.0}))
        assert registry.get("alice", record.job_id) is record
        # Another tenant's id and a bogus id fail identically.
        with pytest.raises(UnknownJob):
            registry.get("bob", record.job_id)
        with pytest.raises(UnknownJob):
            registry.get("alice", "j-999999")

    def test_ack_and_ttl_purge(self):
        registry = JobRegistry(result_ttl=100.0)
        record = registry.register("t", finished_handle(self.KEYS, {(0, 1): 1.0}))
        assert record.wait_drained(timeout=10.0)
        keep = registry.register("t", finished_handle(self.KEYS, {(0, 1): 1.0}))
        assert keep.wait_drained(timeout=10.0)
        assert registry.ack("t", record.job_id) is True
        with pytest.raises(UnknownJob):
            registry.get("t", record.job_id)
        # TTL expiry drops the unacked record too, eventually.
        assert registry.purge_expired(now=keep.finished_at + 99.0) == 0
        assert registry.purge_expired(now=keep.finished_at + 101.0) == 1
        with pytest.raises(UnknownJob):
            registry.get("t", keep.job_id)


# ----------------------------------------------------------------------
# End-to-end serving


WORKLOAD_SHAPES = [
    ("all", lambda keys: AllPairs(keys)),
    ("bipartite", lambda keys: Bipartite(keys[:4], keys[4:])),
    ("delta", lambda keys: DeltaPairs(keys[:7], keys[7:])),
    (
        "filtered",
        lambda keys: FilteredPairs(
            keys, lambda a, b: (int(a[-2:]) + int(b[-2:])) % 3 != 0
        ),
    ),
]


class TestServedParity:
    @pytest.mark.parametrize("shape,build", WORKLOAD_SHAPES)
    def test_result_and_stream_parity_under_two_tenants(self, shape, build):
        """Acceptance: served ``result()`` and ``stream()`` are
        value-identical to in-process execution, with two tenants
        submitting concurrently."""
        server, store, keys = make_server()
        try:
            workload = build(keys)
            expected = sorted(
                map(tuple, reference_results(store, keys, build(keys)).items())
            )
            outcome = {}

            def tenant_run(name):
                with connect(server.address, tenant=name) as client:
                    handle = client.submit(build(keys))
                    matrix = handle.result(timeout=60)
                    streamed = sorted(map(tuple, client.handle(handle.job_id).stream()))
                    outcome[name] = (sorted(map(tuple, matrix.items())), streamed)

            threads = [
                threading.Thread(target=tenant_run, args=(name,))
                for name in ("alice", "bob")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=90)
            assert set(outcome) == {"alice", "bob"}
            for name in ("alice", "bob"):
                result_items, streamed = outcome[name]
                assert result_items == expected, f"{shape} result parity ({name})"
                assert streamed == expected, f"{shape} stream parity ({name})"
        finally:
            server.close()

    def test_plain_key_list_submits_all_pairs(self):
        server, store, keys = make_server(n_items=6)
        try:
            with connect(server.address) as client:
                assert client.keys() == keys
                matrix = client.run(keys)
                assert matrix.is_complete()
                assert matrix.expected_pairs == AllPairs(keys).n_pairs
        finally:
            server.close()

    @pytest.mark.slow
    def test_cluster_backend_served_parity(self):
        """The daemon serves a multi-process cluster session unchanged —
        including a FilteredPairs predicate, which must cross the wire
        as a picklable pair set to reach the worker processes."""
        server, store, keys = make_server(backend="cluster")
        try:
            pred = lambda a, b: (int(a[-2:]) + int(b[-2:])) % 3 != 0
            expected = sorted(
                map(
                    tuple,
                    reference_results(store, keys, FilteredPairs(keys, pred)).items(),
                )
            )
            with connect(server.address) as client:
                matrix = client.submit(FilteredPairs(keys, pred)).result(timeout=120)
            assert sorted(map(tuple, matrix.items())) == expected
        finally:
            server.close()


class TestReconnect:
    def test_disconnect_after_submit_then_reconnect_by_job_id(self):
        """Acceptance: a client that drops after submitting can
        reconnect and fetch the finished ResultMatrix by job id."""
        server, store, keys = make_server(app=SlowApp())
        try:
            client = connect(server.address, tenant="roamer")
            handle = client.submit(AllPairs(keys))
            job_id = handle.job_id
            client.close()  # disconnect mid-run; the job keeps going

            with connect(server.address, tenant="roamer") as again:
                revived = again.handle(job_id)
                matrix = revived.result(timeout=60)
                assert matrix.is_complete()
                expected = reference_results(store, keys, AllPairs(keys))
                assert sorted(map(tuple, matrix.items())) == sorted(
                    map(tuple, expected.items())
                )
                # The replayable stream survives the reconnect too.
                assert len(list(revived.stream())) == matrix.expected_pairs
                assert revived.ack() is True
                with pytest.raises(UnknownJob):
                    again.handle(job_id)
        finally:
            server.close()

    def test_other_tenants_cannot_reach_the_job(self):
        server, store, keys = make_server(n_items=6)
        try:
            with connect(server.address, tenant="alice") as alice:
                job_id = alice.submit(AllPairs(keys)).job_id
                with connect(server.address, tenant="bob") as bob:
                    with pytest.raises(UnknownJob):
                        bob.handle(job_id)
        finally:
            server.close()


class TestTenantScheduling:
    def directory(self):
        return TenantDirectory(
            [
                TenantConfig("heavy", weight=3.0),
                TenantConfig("light", weight=1.0),
                TenantConfig("capped", max_active=1, max_pending_pairs=50),
            ]
        )

    def test_effective_priority_is_weight_times_priority(self):
        server, store, keys = make_server(n_items=6, tenants=self.directory())
        try:
            with connect(server.address, tenant="heavy") as client:
                assert client.tenant["weight"] == 3.0
                response = client._request(
                    {
                        "op": "submit",
                        "workload": protocol.workload_to_wire(AllPairs(keys)),
                        "priority": 2.0,
                    }
                )
                assert response["effective_priority"] == pytest.approx(6.0)
        finally:
            server.close()

    def test_weighted_tenants_share_3_to_1(self):
        """Behavioral acceptance: equal submissions from a weight-3 and
        a weight-1 tenant — the heavy tenant's job finishes first."""
        server, store, keys = make_server(app=SlowApp(), tenants=self.directory())
        try:
            with connect(server.address, tenant="heavy") as heavy, connect(
                server.address, tenant="light"
            ) as light:
                # Same workload, same requested priority: only the
                # tenant weight differs.
                h_heavy = heavy.submit(AllPairs(keys))
                h_light = light.submit(AllPairs(keys))
                assert h_heavy.wait(timeout=90)
                # The 3:1 stride hand-out must leave the light job
                # still unfinished when the heavy one completes.
                light_status = h_light.status()
                assert light_status["state"] != "done" or (
                    light_status["pairs_done"] < light_status["pairs_total"]
                ), "weight-1 tenant finished no later than the weight-3 tenant"
                assert h_light.wait(timeout=90)
                assert h_light.result().is_complete()
                assert h_heavy.result().is_complete()
        finally:
            server.close()

    def test_max_active_quota_rejects_at_admission(self):
        server, store, keys = make_server(app=SlowApp(), tenants=self.directory())
        try:
            with connect(server.address, tenant="capped") as client:
                first = client.submit(AllPairs(keys[:8]))
                with pytest.raises(QuotaExceeded, match="max_active"):
                    client.submit(AllPairs(keys[:4]))
                first.result(timeout=60)
                # The quota frees up once the job finishes.
                client.submit(AllPairs(keys[:4])).result(timeout=60)
        finally:
            server.close()

    def test_pending_pairs_quota(self):
        server, store, keys = make_server(app=SlowApp(), tenants=self.directory())
        try:
            with connect(server.address, tenant="capped") as client:
                # 9 keys = 36 pairs, within the 50-pair budget; a
                # second 36-pair job would exceed it — but max_active=1
                # fires first, so submit a single over-budget workload.
                with pytest.raises(QuotaExceeded, match="max_pending_pairs"):
                    client.submit(AllPairs(keys + [k + "x" for k in keys]))
        finally:
            server.close()


class TestFailureAndCancel:
    def test_remote_failure_is_typed(self):
        class BadApp(SumApp):
            def parse(self, key, file_contents):
                raise ValueError("corrupt item")

        server, store, keys = make_server(n_items=4, app=BadApp())
        try:
            with connect(server.address) as client:
                handle = client.submit(AllPairs(keys))
                with pytest.raises(RemoteJobFailed, match="corrupt item"):
                    handle.result(timeout=60)
        finally:
            server.close()

    def test_cancel_served_job(self):
        server, store, keys = make_server(app=SlowApp())
        try:
            with connect(server.address) as client:
                handle = client.submit(AllPairs(keys))
                assert handle.cancel() is True
                assert handle.wait(timeout=60)
                with pytest.raises(RuntimeError, match="cancelled"):
                    handle.result(timeout=10)
        finally:
            server.close()

    def test_unknown_verbs_and_missing_hello(self):
        server, store, keys = make_server(n_items=4)
        try:
            raw = socket.create_connection((server.host, server.port), timeout=10)
            try:
                protocol.send_message(raw, {"op": "status", "job": "j-000000"})
                response = protocol.recv_message(raw)
                assert response["ok"] is False and response["error"] == "protocol"
                protocol.send_message(raw, {"op": "hello", "tenant": "t"})
                assert protocol.recv_message(raw)["ok"] is True
                protocol.send_message(raw, {"op": "frobnicate"})
                response = protocol.recv_message(raw)
                assert response["error"] == "protocol"
            finally:
                raw.close()
        finally:
            server.close()


class TestDrain:
    def test_drain_resolves_queued_handles_then_rejects_submits(self):
        """Acceptance: SIGTERM-style drain lets queued jobs finish and
        their waiting clients collect results."""
        server, store, keys = make_server(app=SlowApp())
        try:
            with connect(server.address, tenant="t") as client:
                running = client.submit(AllPairs(keys))
                queued = client.submit(AllPairs(keys[:6]))
                server.request_drain()
                with pytest.raises(ServerDraining):
                    client.submit(AllPairs(keys[:4]))
                closer = threading.Thread(target=server.close)
                closer.start()
                # Both pre-drain jobs resolve with full results while
                # the daemon shuts down around them.
                assert running.result(timeout=90).is_complete()
                assert queued.result(timeout=90).is_complete()
                closer.join(timeout=90)
                assert not closer.is_alive()
        finally:
            server.close()

    def test_health_reports_drain_state(self):
        server, store, keys = make_server(n_items=4)
        try:
            with connect(server.address) as client:
                assert client.health()["status"] == "serving"
                server.request_drain()
                assert client.health()["status"] == "draining"
        finally:
            server.close()

    def test_metrics_verb_merges_session_and_serve(self):
        server, store, keys = make_server(n_items=6)
        try:
            with connect(server.address) as client:
                client.run(keys)
                snapshot = client.metrics()
                assert "session" in snapshot and "serve" in snapshot
                serve = snapshot["serve"]["serve"]
                assert serve["jobs"]["submitted"] == 1
                assert serve["requests"] >= 2
        finally:
            server.close()


# ----------------------------------------------------------------------
# SessionClosed close-race contract (both backends)


class TestSessionClosedContract:
    @pytest.mark.parametrize("backend", ["local", "cluster"])
    def test_double_close_raises(self, backend):
        store, keys = make_store(4)
        session = RocketSession._wrap(make_backend(backend, store))
        session.close()
        with pytest.raises(SessionClosed):
            session.close()

    @pytest.mark.parametrize("backend", ["local", "cluster"])
    def test_close_while_submitting_is_loud_not_racy(self, backend):
        """Submissions racing a concurrent close() either succeed with a
        resolvable handle or raise SessionClosed — never anything else,
        and never a hung handle."""
        store, keys = make_store(6)
        session = RocketSession._wrap(
            make_backend(backend, store, app=SlowApp()), policy="fair"
        )
        outcomes = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                try:
                    outcomes.append(("ok", session.submit(AllPairs(keys[:4]))))
                except SessionClosed:
                    outcomes.append(("closed", None))
                    return
                except BaseException as exc:  # pragma: no cover - the bug
                    outcomes.append(("unexpected", exc))
                    return

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        session.close()
        stop.set()
        for t in threads:
            t.join(timeout=60)
        with pytest.raises(SessionClosed):
            session.submit(AllPairs(keys))
        kinds = [kind for kind, _ in outcomes]
        assert "unexpected" not in kinds, outcomes
        # Every accepted handle still resolves (DONE or CANCELLED by
        # the teardown) — no submission may hang in QUEUED forever.
        for kind, handle in outcomes:
            if kind == "ok":
                assert handle.wait(timeout=60)

    def test_context_manager_tolerates_early_close(self):
        store, keys = make_store(4)
        with RocketSession._wrap(make_backend("local", store)) as session:
            session.submit(AllPairs(keys)).result()
            session.close()  # early close inside the block must not raise on exit


# ----------------------------------------------------------------------
# CLI


CLI_ENV = {"PYTHONPATH": "src", "PATH": "/usr/bin:/bin:/usr/local/bin"}


class TestServeCli:
    def test_submit_command_in_process(self, tmp_path, capsys):
        """The ``submit`` subcommand end-to-end against a live daemon."""
        from repro.cli import main

        server, store, keys = make_server(n_items=6)
        try:
            out_path = tmp_path / "results.json"
            rc = main(
                [
                    "submit", "--connect", server.address, "--tenant", "cli",
                    "--bipartite", "2", "--priority", "2.0",
                    "--save", str(out_path),
                ]
            )
            out = capsys.readouterr().out
            assert rc == 0
            assert "bipartite" in out and "8/8 pairs" in out
            assert json.loads(out_path.read_text())["format"] == "rocket-results"
        finally:
            server.close()

    def test_serve_command_in_process(self, monkeypatch, capsys):
        """``serve`` builds the daemon from run/backend flags and prints
        the machine-parseable address line before blocking."""
        import repro.cli as cli
        from repro.serve.daemon import RocketServer as Server

        drained = {}

        def fake_serve_forever(self, install_signals=None):
            drained["address"] = self.address
            self.close()

        monkeypatch.setattr(Server, "serve_forever", fake_serve_forever)
        rc = cli.main(
            ["serve", "forensics", "--items", "4", "--port", "0",
             "--result-ttl", "60"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert f"serving on {drained['address']}" in out
        assert "daemon drained, exiting" in out

    def test_submit_connection_refused_exits_3(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "--connect", "127.0.0.1:1"],
            env=CLI_ENV, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 3
        assert "cannot connect" in proc.stderr

    def test_serve_submit_sigterm_drain_round_trip(self):
        """The daemon serves a CLI submit, then exits 0 on SIGTERM."""
        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "forensics",
                "--items", "8", "--port", "0",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=CLI_ENV,
        )
        try:
            line = daemon.stdout.readline()
            assert "serving on " in line, line
            address = line.strip().rsplit(" ", 1)[-1]

            submit = subprocess.run(
                [
                    sys.executable, "-m", "repro", "submit",
                    "--connect", address, "--tenant", "cli", "--delta", "2",
                ],
                env=CLI_ENV, capture_output=True, text=True, timeout=180,
            )
            assert submit.returncode == 0, submit.stdout + submit.stderr
            assert "13/13 pairs" in submit.stdout

            # A job left running through the drain still resolves: the
            # client library talks to the draining daemon directly.
            with connect(address, tenant="cli") as client:
                handle = client.submit(AllPairs(client.keys()))
                daemon.send_signal(signal.SIGTERM)
                assert handle.result(timeout=120).is_complete()

            out, _ = daemon.communicate(timeout=120)
            assert daemon.returncode == 0, out
            assert "daemon drained, exiting" in out
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate(timeout=30)
