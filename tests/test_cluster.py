"""Unit tests for GPU catalog, nodes, storage, and cluster topology."""

import pytest

from repro.scheduling.workstealing import WorkerTopology
from repro.sim.cluster import ClusterSpec, SimCluster
from repro.sim.engine import Environment
from repro.sim.gpu import GPU_CATALOG, gpu_model
from repro.sim.node import NodeSpec, SimNode
from repro.sim.storage import StorageServer, StorageSpec


class TestGpuCatalog:
    def test_baseline_is_titanx_maxwell(self):
        assert gpu_model("TitanX Maxwell").speed_factor == 1.0

    def test_generational_ordering(self):
        """Newer generations must be faster (the Fig. 13/14 premise)."""
        assert gpu_model("K20m").speed_factor < gpu_model("GTX980").speed_factor
        assert gpu_model("GTX980").speed_factor < gpu_model("TitanX Maxwell").speed_factor
        assert gpu_model("TitanX Maxwell").speed_factor < gpu_model("TitanX Pascal").speed_factor
        assert gpu_model("TitanX Pascal").speed_factor < gpu_model("RTX2080Ti").speed_factor

    def test_kernel_time_scaling(self):
        rtx = gpu_model("RTX2080Ti")
        assert rtx.kernel_time(1.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            rtx.kernel_time(-1.0)

    def test_usable_cache_default_matches_paper(self):
        """TitanX Maxwell: 12 GB card runs an 11 GB device cache."""
        usable = gpu_model("TitanX Maxwell").usable_cache_bytes()
        assert 10.9e9 < usable < 11.9e9

    def test_unknown_model_helpful_error(self):
        with pytest.raises(KeyError, match="known models"):
            gpu_model("H100")

    def test_catalog_has_all_paper_devices(self):
        expected = {"K20m", "GTX Titan", "K40m", "GTX980", "TitanX Maxwell", "TitanX Pascal", "RTX2080Ti"}
        assert expected == set(GPU_CATALOG)


class TestNodeSpec:
    def test_defaults_match_das5(self):
        spec = NodeSpec()
        assert spec.cpu_cores == 16
        assert spec.host_cache_bytes == pytest.approx(40e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(gpus=())
        with pytest.raises(KeyError):
            NodeSpec(gpus=("NotAGpu",))
        with pytest.raises(ValueError):
            NodeSpec(cpu_cores=0)

    def test_total_speed(self):
        spec = NodeSpec(gpus=("RTX2080Ti", "RTX2080Ti"))
        assert spec.total_speed == pytest.approx(4.0)

    def test_sim_node_structure(self):
        env = Environment()
        node = SimNode(env, NodeSpec(gpus=("K20m", "GTX980")), index=3)
        assert node.n_gpus == 2
        assert node.cpu.capacity == 16
        assert node.io.capacity == 1
        assert "K20m" in node.gpus[0].lane
        assert "n3" in repr(node) or "3" in repr(node)


class TestStorage:
    def test_read_duration(self):
        env = Environment()
        server = StorageServer(env, StorageSpec(bandwidth=100.0, latency=1.0))

        def proc():
            # Latency is paid by the requester (overlapping across
            # concurrent readers); only bandwidth is shared.
            yield env.timeout(server.latency)
            yield server.read(50)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(1.5)
        assert server.bytes_read == 50
        assert server.read_count == 1

    def test_concurrent_readers_overlap_latency(self):
        env = Environment()
        server = StorageServer(env, StorageSpec(bandwidth=100.0, latency=1.0))
        done = []

        def proc(tag):
            yield env.timeout(server.latency)
            yield server.read(50)
            done.append((env.now, tag))

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        # Latencies overlap; only the two 0.5 s transfers serialise.
        assert done == [(pytest.approx(1.5), "a"), (pytest.approx(2.0), "b")]

    def test_average_usage(self):
        env = Environment()
        server = StorageServer(env, StorageSpec())
        server.read(1000)
        env.run()
        assert server.average_usage(10.0) == pytest.approx(100.0)
        assert server.average_usage(0.0) == 0.0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            StorageSpec(bandwidth=0)
        with pytest.raises(ValueError):
            StorageSpec(latency=-1)


class TestClusterSpec:
    def test_homogeneous_builder(self):
        spec = ClusterSpec.homogeneous(4, gpu="K40m", gpus_per_node=2)
        assert spec.n_nodes == 4
        assert spec.n_gpus == 8
        assert all(ns.gpus == ("K40m", "K40m") for ns in spec.nodes)

    def test_das5_heterogeneous_matches_paper(self):
        """Section 6.5: 4 nodes, 7 GPUs, 4 generations."""
        spec = ClusterSpec.das5_heterogeneous()
        assert spec.n_nodes == 4
        assert spec.n_gpus == 7
        generations = {gpu_model(g).generation for ns in spec.nodes for g in ns.gpus}
        assert generations == {"Kepler", "Maxwell", "Pascal", "Turing"}

    def test_cartesius_nodes(self):
        spec = ClusterSpec.cartesius(48)
        assert spec.n_gpus == 96
        assert spec.nodes[0].host_cache_bytes == pytest.approx(80e9)

    def test_worker_topology(self):
        spec = ClusterSpec.das5_heterogeneous()
        topo = spec.worker_topology()
        assert isinstance(topo, WorkerTopology)
        assert topo.node_of == (0, 1, 1, 2, 2, 3, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=())
        with pytest.raises(ValueError):
            ClusterSpec.homogeneous(0)


class TestSimCluster:
    def test_local_transfer_is_free(self):
        env = Environment()
        cluster = SimCluster(env, ClusterSpec.homogeneous(2))

        def proc():
            yield cluster.transfer(1, 1, 1e9)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == 0.0

    def test_remote_transfer_occupies_both_nics(self):
        env = Environment()
        cluster = SimCluster(env, ClusterSpec.homogeneous(2))

        def proc():
            yield cluster.transfer(0, 1, 7.0e9)  # 1 second at 7 GB/s
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(1.0, rel=0.01)
        assert cluster.nodes[0].nic_up.bytes_transferred == 7.0e9
        assert cluster.nodes[1].nic_down.bytes_transferred == 7.0e9

    def test_control_message_latency(self):
        env = Environment()
        cluster = SimCluster(env, ClusterSpec.homogeneous(2))

        def proc():
            yield cluster.control_message(0, 1)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(cluster.spec.control_latency)

    def test_node_index_validation(self):
        env = Environment()
        cluster = SimCluster(env, ClusterSpec.homogeneous(2))
        with pytest.raises(ValueError):
            cluster.transfer(0, 5, 10)

    def test_all_gpus_flat_order(self):
        env = Environment()
        cluster = SimCluster(env, ClusterSpec.das5_heterogeneous())
        gpus = cluster.all_gpus()
        assert len(gpus) == 7
        assert gpus[0].model.name == "K20m"
        assert gpus[-1].model.name == "TitanX Pascal"
