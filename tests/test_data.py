"""Unit and property tests for file stores, codecs, and synthetic data."""

import threading
import time

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.filestore import DirectoryStore, InMemoryStore, ThrottledStore
from repro.data.formats import (
    decode_fasta,
    decode_image,
    decode_particle,
    encode_fasta,
    encode_image,
    encode_particle,
)
from repro.data.synthetic import (
    AMINO_ACIDS,
    make_bioinformatics_dataset,
    make_forensics_dataset,
    make_microscopy_dataset,
    make_template,
)


class TestInMemoryStore:
    def test_roundtrip(self):
        store = InMemoryStore()
        store.write("x", b"data")
        assert store.read("x") == b"data"
        assert store.names() == ["x"]
        assert store.exists("x") and not store.exists("y")

    def test_missing_key(self):
        with pytest.raises(KeyError):
            InMemoryStore().read("nope")

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            InMemoryStore().write("x", "str")  # type: ignore[arg-type]

    def test_total_bytes(self):
        store = InMemoryStore()
        store.write("a", b"12")
        store.write("b", b"345")
        assert store.total_bytes() == 5


class TestDirectoryStore(object):
    def test_roundtrip(self, tmp_path):
        store = DirectoryStore(tmp_path / "blobs")
        store.write("f.bin", b"\x00\x01")
        assert store.read("f.bin") == b"\x00\x01"
        assert store.names() == ["f.bin"]

    def test_path_traversal_rejected(self, tmp_path):
        store = DirectoryStore(tmp_path)
        with pytest.raises(ValueError):
            store.read("../etc/passwd")

    def test_missing_file(self, tmp_path):
        with pytest.raises(KeyError):
            DirectoryStore(tmp_path).read("gone")


class TestThrottledStore:
    def test_read_is_delayed(self):
        inner = InMemoryStore()
        inner.write("x", b"0" * 1000)
        store = ThrottledStore(inner, bandwidth=100_000.0)  # 10 ms service
        t0 = time.monotonic()
        store.read("x")
        elapsed = time.monotonic() - t0
        assert elapsed >= 0.009
        assert store.bytes_read == 1000
        assert store.read_count == 1

    def test_concurrent_reads_serialise(self):
        inner = InMemoryStore()
        inner.write("x", b"0" * 1000)
        store = ThrottledStore(inner, bandwidth=100_000.0)  # 10 ms each
        t0 = time.monotonic()
        threads = [threading.Thread(target=store.read, args=("x",)) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert time.monotonic() - t0 >= 0.028

    def test_validation(self):
        with pytest.raises(ValueError):
            ThrottledStore(InMemoryStore(), bandwidth=0)

    def test_passthrough_methods(self):
        inner = InMemoryStore()
        store = ThrottledStore(inner, bandwidth=1e9)
        store.write("a", b"1")
        assert store.exists("a")
        assert store.names() == ["a"]


class TestImageCodec:
    @given(
        hnp.arrays(
            dtype=np.uint8,
            shape=st.tuples(st.integers(1, 40), st.integers(1, 40)),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_exact(self, pixels):
        assert np.array_equal(decode_image(encode_image(pixels)), pixels)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            encode_image(np.zeros((4, 4), dtype=np.float32))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            encode_image(np.zeros(4, dtype=np.uint8))

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_image(b"not an image at all")

    def test_rejects_truncated(self):
        blob = encode_image(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(Exception):
            decode_image(blob[:8])


class TestFastaCodec:
    @given(
        st.dictionaries(
            keys=st.text(alphabet="abcdefgh_0123456789", min_size=1, max_size=12),
            values=st.text(alphabet=AMINO_ACIDS, min_size=1, max_size=200),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_exact(self, records):
        assert decode_fasta(encode_fasta(records)) == records

    def test_uncompressed_mode(self):
        records = {"p1": "ACDEFG"}
        blob = encode_fasta(records, compress=False)
        assert blob.startswith(b">p1")
        assert decode_fasta(blob, compressed=False) == records

    def test_wrapping_at_60_columns(self):
        blob = encode_fasta({"p": "A" * 150}, compress=False).decode()
        lines = blob.strip().splitlines()
        assert lines[1] == "A" * 60
        assert lines[3] == "A" * 30

    def test_malformed_inputs(self):
        with pytest.raises(ValueError):
            encode_fasta({})
        with pytest.raises(ValueError):
            encode_fasta({"x": ""})
        with pytest.raises(ValueError):
            decode_fasta(b"AAAA", compressed=False)  # data before header


class TestParticleCodec:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 50), st.just(2)),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_close(self, points):
        decoded, _ = decode_particle(encode_particle(points))
        assert np.allclose(decoded, points)

    def test_meta_roundtrip(self):
        blob = encode_particle(np.zeros((3, 2)), meta={"theta": 1.5})
        _, meta = decode_particle(blob)
        assert meta == {"theta": 1.5}

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            encode_particle(np.zeros((3, 3)))

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_particle(b"\x00\x01")
        with pytest.raises(ValueError):
            decode_particle(b'{"format": "other"}')


class TestForensicsDataset:
    def test_generation_deterministic(self):
        s1, s2 = InMemoryStore(), InMemoryStore()
        d1 = make_forensics_dataset(s1, n_images=6, n_cameras=2, image_shape=(16, 16), seed=3)
        d2 = make_forensics_dataset(s2, n_images=6, n_cameras=2, image_shape=(16, 16), seed=3)
        assert d1.keys == d2.keys
        assert all(s1.read(n) == s2.read(n) for n in s1.names())

    def test_balanced_cameras(self):
        store = InMemoryStore()
        ds = make_forensics_dataset(store, n_images=8, n_cameras=4, image_shape=(16, 16))
        counts = {}
        for key in ds.keys:
            counts[ds.camera_of[key]] = counts.get(ds.camera_of[key], 0) + 1
        assert set(counts.values()) == {2}

    def test_same_camera_predicate(self):
        store = InMemoryStore()
        ds = make_forensics_dataset(store, n_images=4, n_cameras=2, image_shape=(16, 16))
        assert ds.same_camera(ds.keys[0], ds.keys[2])
        assert not ds.same_camera(ds.keys[0], ds.keys[1])

    def test_files_decode(self):
        store = InMemoryStore()
        ds = make_forensics_dataset(store, n_images=3, n_cameras=1, image_shape=(16, 16))
        img = decode_image(store.read(f"{ds.keys[0]}.rimg"))
        assert img.shape == (16, 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_forensics_dataset(InMemoryStore(), n_images=1)


class TestBioinformaticsDataset:
    def test_tree_is_binary_tree_over_leaves(self):
        store = InMemoryStore()
        ds = make_bioinformatics_dataset(store, n_species=7, n_proteins=2, protein_length=50)
        assert nx.is_tree(ds.tree)
        leaves = [n for n in ds.tree.nodes if isinstance(n, str)]
        assert sorted(leaves) == ds.keys
        assert all(ds.tree.degree(leaf) == 1 for leaf in leaves)

    def test_proteomes_decode_with_expected_shape(self):
        store = InMemoryStore()
        ds = make_bioinformatics_dataset(store, n_species=4, n_proteins=3, protein_length=40)
        records = decode_fasta(store.read(f"{ds.keys[0]}.faz"))
        assert len(records) == 3
        assert all(len(seq) == 40 for seq in records.values())
        assert all(set(seq) <= set(AMINO_ACIDS) for seq in records.values())

    def test_true_clades_nontrivial(self):
        store = InMemoryStore()
        ds = make_bioinformatics_dataset(store, n_species=8)
        clades = ds.true_clades()
        assert clades
        assert all(1 < len(c) < 7 for c in clades)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_bioinformatics_dataset(InMemoryStore(), n_species=2)


class TestMicroscopyDataset:
    def test_particles_decode(self):
        store = InMemoryStore()
        ds = make_microscopy_dataset(store, n_particles=4, template_points=24)
        pts, meta = decode_particle(store.read(f"{ds.keys[0]}.json"))
        assert pts.shape[1] == 2
        assert "theta" in meta

    def test_transforms_recorded(self):
        store = InMemoryStore()
        ds = make_microscopy_dataset(store, n_particles=4)
        assert set(ds.transforms) == set(ds.keys)
        for theta, tx, ty in ds.transforms.values():
            assert 0 <= theta < 2 * np.pi
            assert abs(tx) <= 0.3 and abs(ty) <= 0.3

    def test_underlabelling_reduces_points(self):
        store = InMemoryStore()
        ds = make_microscopy_dataset(
            store, n_particles=4, template_points=48, keep_fraction=0.5, outlier_fraction=0.0
        )
        pts, _ = decode_particle(store.read(f"{ds.keys[0]}.json"))
        assert len(pts) < len(ds.template)

    def test_template_kinds(self):
        ring = make_template("ring", 30)
        grid = make_template("grid", 25)
        assert ring.shape[1] == 2 and grid.shape[1] == 2
        with pytest.raises(ValueError):
            make_template("spiral")

    def test_validation(self):
        with pytest.raises(ValueError):
            make_microscopy_dataset(InMemoryStore(), n_particles=1)
        with pytest.raises(ValueError):
            make_microscopy_dataset(InMemoryStore(), keep_fraction=0.0)
