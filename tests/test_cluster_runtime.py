"""Tests for the multi-process cluster runtime and its protocols.

Two layers:

- protocol unit tests drive :class:`NodeCommServer` handlers over a
  synchronous in-process transport (no OS processes), which makes
  churn scenarios — holders evicting items between the mediator
  forward and the fetch — deterministic;
- end-to-end tests spawn real worker processes and check that the
  cluster backend produces results identical to the local backend
  under **both** data planes (queue and shared-memory), that remote
  cache hits genuinely travel over the transport, and that failures
  (application errors, node crashes) surface as clean errors instead
  of hangs — without leaking ``/dev/shm`` segments.
"""

import glob
import os
import threading

import numpy as np
import pytest

from repro.cache.distributed import mediator_of
from repro.core.api import Application
from repro.core.rocket import Rocket
from repro.data.filestore import InMemoryStore
from repro.runtime.backend import available_backends, create_backend
from repro.runtime.cluster import (
    ClusterConfig,
    ClusterRocketRuntime,
    NodeCommServer,
)
from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig
from repro.runtime.transport import Transport
from repro.runtime.transport.shm import SharedMemoryFabric
from repro.scheduling.quadtree import PairBlock


def shm_segments():
    """Names of this transport's segments currently visible in /dev/shm."""
    if not os.path.isdir("/dev/shm"):
        pytest.skip("/dev/shm not available on this platform")
    return set(glob.glob(f"/dev/shm/{SharedMemoryFabric.SEGMENT_PREFIX}*"))


class SumApp(Application[str, float]):
    """Deterministic toy app: compare = sum(a) * sum(b)."""

    def file_name(self, key):
        return f"{key}.bin"

    def parse(self, key, file_contents):
        return np.frombuffer(file_contents, dtype=np.float64).copy()

    def preprocess(self, key, parsed):
        return parsed * 2.0

    def compare(self, key_a, a, key_b, b):
        return np.asarray(float(a.sum() * b.sum()))

    def postprocess(self, key_a, key_b, raw):
        return float(raw)


def make_store(n, floats=8):
    store = InMemoryStore()
    keys = []
    for i in range(n):
        key = f"item{i:02d}"
        store.write(f"{key}.bin", np.full(floats, float(i + 1)).tobytes())
        keys.append(key)
    return store, keys


def accept_pair(a, b):
    """Module-level pair filter (inherited by forked workers)."""
    return (int(a[-2:]) + int(b[-2:])) % 3 != 0


# ----------------------------------------------------------------------
# Protocol unit tests (synchronous in-process transport)


class SyncNet:
    """Delivers node-to-node messages synchronously; collects coordinator traffic."""

    def __init__(self):
        self.servers = {}
        self.coordinator_log = []

    def transport_for(self, node):
        return _SyncTransport(self, node)


class _SyncTransport(Transport):
    """Inherits the inline payload plane; messaging is synchronous."""

    def __init__(self, net, node_id):
        super().__init__(node_id)
        self.net = net

    def send_node(self, node, msg):
        self.net.servers[node].handle(msg)

    def send_coordinator(self, msg):
        self.net.coordinator_log.append(msg)

    def recv(self, timeout):
        return None


class StubPipeline:
    """Just enough pipeline surface for the comm server's server side."""

    def __init__(self, payloads=None):
        self.payloads = dict(payloads or {})
        self.injected = []
        self.stopped = None

    def host_payload_view(self, key):
        return self.payloads.get(key)

    def steal_for_remote(self):
        return None

    def inject_block(self, block):
        self.injected.append(block)

    def request_stop(self, abort=False):
        self.stopped = abort


JOB = 0  # protocol job id used by the unit-test network


def make_net(n_nodes, keys, payloads_by_node, max_hops=2):
    net = SyncNet()
    cfg = ClusterConfig(n_nodes=n_nodes, max_hops=max_hops, fetch_timeout=1.0, steal_timeout=0.2)
    net.states = {}
    for node in range(n_nodes):
        server = NodeCommServer(node, cfg, net.transport_for(node))
        state = server.begin_job(JOB, keys)
        server.attach(state, StubPipeline(payloads_by_node.get(node, {})))
        net.servers[node] = server
        net.states[node] = state
    return net


class TestDistributedCacheProtocol:
    KEYS = [f"k{i}" for i in range(8)]

    def test_first_request_has_no_candidates(self):
        net = make_net(2, self.KEYS, {})
        requester, state = net.servers[0], net.states[0]
        assert requester.remote_fetch(state, 1) is None
        assert state.hops.no_candidates == 1
        assert state.hops.requests == 1

    def test_hit_at_first_hop_ships_payload(self):
        item = 1
        assert mediator_of(item, 2) == 1
        payload = np.arange(6.0)
        net = make_net(2, self.KEYS, {1: {self.KEYS[item]: payload}})
        # Node 1 requested the item earlier, so the mediator (itself)
        # lists it as the candidate for future requests.
        net.servers[1].handle(("creq", JOB, 1, item, 999))
        got = net.servers[0].remote_fetch(net.states[0], item)
        assert got is not None and np.array_equal(got, payload)
        assert net.states[0].hops.hits_at_hop[0] == 1
        assert net.states[0].bytes_received == payload.nbytes
        assert net.states[1].bytes_shipped == payload.nbytes

    def test_holder_evicted_between_forward_and_fetch_is_a_miss(self):
        """Churn: the candidate dropped the item; request falls to a load."""
        item = 1
        net = make_net(2, self.KEYS, {1: {}})  # node 1 holds nothing any more
        net.servers[1].handle(("creq", JOB, 1, item, 999))  # ...but is still listed
        assert net.servers[0].remote_fetch(net.states[0], item) is None
        assert net.states[0].hops.misses == 1
        assert net.states[0].hops.total_hits == 0

    def test_eviction_falls_through_to_next_candidate(self):
        """Churn along the chain: first candidate evicted, second still holds."""
        item = 3
        assert mediator_of(item, 4) == 3
        payload = np.full(4, 7.0)
        net = make_net(
            4,
            self.KEYS,
            {2: {}, 1: {self.KEYS[item]: payload}},  # node 2 evicted, node 1 holds
        )
        mediator = net.servers[3]
        mediator.handle(("creq", JOB, 1, item, 901))  # node 1 requested first
        mediator.handle(("creq", JOB, 2, item, 902))  # node 2 most recent candidate
        got = net.servers[0].remote_fetch(net.states[0], item)
        assert got is not None and np.array_equal(got, payload)
        # Probe visited node 2 (miss) then node 1: a hit at hop 2.
        assert net.states[0].hops.hits_at_hop == [0, 1]

    def test_chain_exhausted_records_miss(self):
        item = 3
        net = make_net(4, self.KEYS, {1: {}, 2: {}})
        mediator = net.servers[3]
        mediator.handle(("creq", JOB, 1, item, 901))
        mediator.handle(("creq", JOB, 2, item, 902))
        assert net.servers[0].remote_fetch(net.states[0], item) is None
        assert net.states[0].hops.misses == 1
        assert net.states[0].hops.no_candidates == 0

    def test_mediator_excludes_requester_from_candidates(self):
        item = 1
        net = make_net(2, self.KEYS, {})
        net.servers[1].handle(("creq", JOB, 0, item, 900))  # only node 0 ever asked
        assert net.servers[0].remote_fetch(net.states[0], item) is None
        # Node 0 must not be forwarded to itself: that is a no-candidate miss.
        assert net.states[0].hops.no_candidates == 2 - 1  # second request, still none

    def test_message_budget_is_h_plus_2(self):
        """A full-chain miss costs exactly h + 2 protocol messages."""
        item = 3
        h = 2
        net = make_net(4, self.KEYS, {1: {}, 2: {}}, max_hops=h)
        mediator = net.servers[3]
        mediator.handle(("creq", JOB, 1, item, 901))
        mediator.handle(("creq", JOB, 2, item, 902))
        before = sum(s.messages for s in net.states.values())
        net.servers[0].remote_fetch(net.states[0], item)
        spent = sum(s.messages for s in net.states.values()) - before
        assert spent == h + 2  # request + h forwards + reply

    def test_unknown_job_request_answered_with_miss(self):
        """A creq for a job this node never began gets a definitive miss
        reply instead of being dropped — the requester must fall through
        to a local load, not block out its fetch timeout."""
        net = make_net(2, self.KEYS, {})
        assert net.servers[0].remote_fetch(net.states[0], 1) is None  # warm-up
        state_other = net.servers[0].begin_job(99, self.KEYS)
        net.servers[0].attach(state_other, StubPipeline({}))
        # Node 1 never began job 99: the mediator answers with a miss.
        assert net.servers[0].remote_fetch(state_other, 1) is None
        assert state_other.hops.misses + state_other.hops.no_candidates >= 1

    def test_late_steal_grant_is_not_lost(self):
        net = make_net(2, self.KEYS, {})
        server = net.servers[0]
        block = PairBlock.root(8)
        server.handle(("sgrant", JOB, 12345, block))  # no pending request: timed out
        assert net.states[0].pipeline.injected == [block]

    def test_steal_grant_for_ended_job_is_dropped(self):
        """A grant tagged with an ended job's id must not be injected
        into another job's pipeline (its index space differs)."""
        net = make_net(2, self.KEYS, {})
        server = net.servers[0]
        server.end_job(net.states[0])
        block = PairBlock.root(8)
        server.handle(("sgrant", JOB, 12345, block))
        assert net.states[0].pipeline is None  # detached, nothing injected

    def test_stop_wakes_blocked_steal(self):
        net = make_net(2, self.KEYS, {})
        server, state = net.servers[0], net.states[0]
        out = []
        t = threading.Thread(target=lambda: out.append(server.global_steal(state)))
        t.start()
        # sreq goes to the coordinator log and nobody answers; stop must wake it.
        server.handle(("stop", JOB, False))
        t.join(timeout=2.0)
        assert not t.is_alive() and out == [None]
        assert state.pipeline.stopped is False
        assert state.stopped.is_set()

    def test_stop_of_one_job_leaves_other_running(self):
        """Job isolation: stopping job A resolves only A's pending
        requests and pipeline; co-active job B is untouched."""
        net = make_net(2, self.KEYS, {})
        server = net.servers[0]
        state_a = net.states[0]
        state_b = server.begin_job(7, self.KEYS)
        server.attach(state_b, StubPipeline({}))
        server.handle(("stop", JOB, True))
        assert state_a.stopped.is_set() and state_a.pipeline.stopped is True
        assert not state_b.stopped.is_set() and state_b.pipeline.stopped is None


# ----------------------------------------------------------------------
# End-to-end multi-process tests


def run_local(keys, store, **cfg):
    runtime = LocalRocketRuntime(SumApp(), store, RocketConfig(**cfg))
    return runtime.run(keys)


class TestClusterRuntime:
    CFG = dict(
        n_devices=1,
        device_cache_slots=8,
        host_cache_slots=16,
        leaf_size=2,
        seed=3,
        watchdog_seconds=120.0,
    )

    #: Pre-processed payload size of the end-to-end runs (4096 float64).
    PAYLOAD_BYTES = 4096 * 8

    @pytest.mark.parametrize("transport", ["queue", "shm"])
    def test_matches_local_backend_and_hits_over_the_wire(self, transport):
        store, keys = make_store(12, floats=4096)
        local = run_local(keys, store, **self.CFG)
        before = shm_segments() if transport == "shm" else None

        runtime = ClusterRocketRuntime(
            SumApp(),
            store,
            RocketConfig(**self.CFG),
            cluster=ClusterConfig(
                n_nodes=2, fetch_timeout=20.0, steal_timeout=5.0,
                transport=transport, result_batch=8,
            ),
        )
        results = runtime.run(keys)
        assert results.is_complete()
        for a, b, v in local.items():
            assert results.get(a, b) == v  # bit-identical: pure pipelines

        stats = runtime.last_stats
        assert stats is not None
        assert stats.transport == transport
        assert stats.n_pairs == 66 and stats.n_nodes == 2
        assert len(stats.node_stats) == 2
        assert sum(sum(ns.pairs_per_device.values()) for ns in stats.node_stats) == 66
        # The distributed cache really served data across processes.
        assert stats.hop_stats.requests > 0
        assert stats.hop_stats.total_hits >= 1
        assert stats.bytes_over_wire > 0
        assert stats.messages >= stats.hop_stats.requests + 2
        # Batching: far fewer result messages than pairs.
        assert stats.message_kinds["result"] < stats.n_pairs
        assert sum(stats.message_kinds.values()) == stats.messages
        if transport == "shm":
            # Descriptors, not payloads, on the wire — and every
            # segment unlinked at run end.
            assert stats.bytes_over_wire < stats.hop_stats.total_hits * 1024
            assert shm_segments() == before
        else:
            # Inline shipping pays the full payload per remote hit.
            assert stats.bytes_over_wire >= stats.hop_stats.total_hits * self.PAYLOAD_BYTES
        # Every item is loaded from storage at most... once per node.
        assert stats.loads <= 2 * 12
        assert "remote hits" in stats.summary()
        assert transport in stats.summary()

    def test_single_node_cluster(self):
        store, keys = make_store(8)
        runtime = ClusterRocketRuntime(
            SumApp(), store, RocketConfig(**self.CFG), cluster=ClusterConfig(n_nodes=1)
        )
        results = runtime.run(keys)
        assert results.is_complete()
        assert runtime.last_stats.hop_stats.requests == 0

    @pytest.mark.parametrize("transport", ["queue", "shm"])
    def test_three_nodes_with_tight_caches_survive_churn(self, transport):
        """Constant eviction: remote requests miss, loads re-run, results hold."""
        cfg = dict(self.CFG, device_cache_slots=3, host_cache_slots=4)
        store, keys = make_store(10)
        local = run_local(keys, store, **cfg)
        runtime = ClusterRocketRuntime(
            SumApp(),
            store,
            RocketConfig(**cfg),
            cluster=ClusterConfig(
                n_nodes=3, fetch_timeout=20.0, steal_timeout=5.0, transport=transport
            ),
        )
        results = runtime.run(keys)
        assert results.is_complete()
        for a, b, v in local.items():
            assert results.get(a, b) == v
        stats = runtime.last_stats
        assert stats.hop_stats.requests > 0
        # With 4 host slots for 10 items, some requests must fail and
        # fall through to local loads.
        assert stats.hop_stats.misses + stats.hop_stats.no_candidates >= 1
        assert stats.loads >= 10

    def test_heterogeneous_nodes_speed_policy(self):
        """Per-node speed mixes: parity holds, shares track node speed."""
        from repro.scheduling.workstealing import StealPolicy

        store, keys = make_store(10)
        local = run_local(keys, store, **self.CFG)
        runtime = ClusterRocketRuntime(
            SumApp(),
            store,
            RocketConfig(**dict(self.CFG, steal_policy=StealPolicy.SPEED)),
            cluster=ClusterConfig(
                n_nodes=2,
                fetch_timeout=20.0,
                steal_timeout=5.0,
                node_speed_factors=((1.0,), (0.25,)),
            ),
        )
        results = runtime.run(keys)
        assert results.is_complete()
        for a, b, v in local.items():
            assert results.get(a, b) == v
        stats = runtime.last_stats
        assert stats.aggregate_speed == pytest.approx(1.25)
        assert stats.node_stats[0].aggregate_speed == pytest.approx(1.0)
        assert stats.node_stats[1].aggregate_speed == pytest.approx(0.25)
        # Online calibration ran on every node and fed the live model.
        assert stats.calibration is not None
        assert stats.calibration.cmp_count == stats.n_pairs
        assert stats.predicted_runtime > 0
        assert "model: predicted" in stats.summary()

    def test_node_speed_factor_validation(self):
        store, keys = make_store(4)
        with pytest.raises(ValueError, match="speed-factor tuples"):
            ClusterConfig(n_nodes=2, node_speed_factors=((1.0,),))
        with pytest.raises(ValueError, match=r"must be in \(0, 1\]"):
            ClusterConfig(n_nodes=2, node_speed_factors=((1.0,), (0.0,)))
        with pytest.raises(ValueError, match=r"must be in \(0, 1\]"):
            ClusterConfig(n_nodes=2, node_speed_factors=((1.0,), (2.0,)))
        with pytest.raises(ValueError, match="speed factors for"):
            ClusterRocketRuntime(
                SumApp(),
                store,
                RocketConfig(n_devices=2),
                cluster=ClusterConfig(n_nodes=2, node_speed_factors=((1.0,), (0.5,))),
            )

    def test_pair_filter(self):
        store, keys = make_store(9)
        local = run_local(keys, store, **self.CFG)  # unfiltered sanity baseline
        assert local.is_complete()
        runtime = ClusterRocketRuntime(
            SumApp(), store, RocketConfig(**self.CFG), cluster=ClusterConfig(n_nodes=2)
        )
        with pytest.warns(DeprecationWarning, match="FilteredPairs"):
            results = runtime.run(keys, pair_filter=accept_pair)
        expected = [
            (a, b) for i, a in enumerate(keys) for b in keys[i + 1:] if accept_pair(a, b)
        ]
        assert len(results) == len(expected)
        for a, b in expected:
            assert results.get(a, b) == local.get(a, b)

    def test_application_error_propagates_cleanly(self):
        class BadApp(SumApp):
            def parse(self, key, file_contents):
                if key == "item02":
                    raise ValueError(f"corrupt file for {key}")
                return super().parse(key, file_contents)

        store, keys = make_store(6)
        runtime = ClusterRocketRuntime(
            BadApp(),
            store,
            RocketConfig(**dict(self.CFG, watchdog_seconds=60.0)),
            cluster=ClusterConfig(n_nodes=2),
        )
        with pytest.raises(RuntimeError, match="ValueError: corrupt file"):
            runtime.run(keys)

    @pytest.mark.parametrize("transport", ["queue", "shm"])
    def test_node_crash_surfaces_as_clean_error(self, transport):
        class CrashApp(SumApp):
            def parse(self, key, file_contents):
                if key == "item03":
                    os._exit(3)  # simulate a node dying mid-run
                return super().parse(key, file_contents)

        store, keys = make_store(6)
        before = shm_segments() if transport == "shm" else None
        runtime = ClusterRocketRuntime(
            CrashApp(),
            store,
            RocketConfig(**dict(self.CFG, watchdog_seconds=60.0)),
            cluster=ClusterConfig(n_nodes=2, transport=transport),
        )
        with pytest.raises(RuntimeError, match="died unexpectedly"):
            runtime.run(keys)
        if transport == "shm":
            # The coordinator owns the segments: a crashed worker must
            # not leak /dev/shm entries.
            assert shm_segments() == before


# ----------------------------------------------------------------------
# Backend registry / Rocket integration


class TestBackendSelection:
    def test_registry_lists_both_backends(self):
        names = available_backends()
        assert "local" in names and "cluster" in names
        assert Rocket.backends() == names

    def test_unknown_backend_raises(self):
        store, keys = make_store(4)
        with pytest.raises(ValueError, match="unknown backend"):
            Rocket(SumApp(), store, backend="quantum")

    def test_local_backend_rejects_cluster_options(self):
        store, keys = make_store(4)
        with pytest.raises(TypeError, match="unknown local backend options"):
            Rocket(SumApp(), store, backend="local", n_nodes=2)

    def test_conflicting_node_counts_raise(self):
        store, keys = make_store(4)
        with pytest.raises(ValueError, match="conflicting node counts"):
            create_backend(
                "cluster", SumApp(), store, RocketConfig(), n_nodes=3,
                cluster=ClusterConfig(n_nodes=2),
            )

    def test_rocket_cluster_backend_end_to_end(self):
        store, keys = make_store(8)
        rocket = Rocket(
            SumApp(),
            store,
            RocketConfig(n_devices=1, seed=1, watchdog_seconds=120.0),
            backend="cluster",
            n_nodes=2,
        )
        assert rocket.backend == "cluster"
        results = rocket.run(keys)
        assert results.is_complete()
        assert rocket.last_stats.n_nodes == 2

    def test_cluster_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(max_hops=0)
        with pytest.raises(ValueError):
            ClusterConfig(fetch_timeout=0.0)
