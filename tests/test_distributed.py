"""Unit tests for the distributed-cache protocol state."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.distributed import CandidateDirectory, HopStats, RequestOutcome, mediator_of


class TestMediatorOf:
    def test_modular_assignment(self):
        assert mediator_of(0, 4) == 0
        assert mediator_of(5, 4) == 1
        assert mediator_of(7, 4) == 3

    def test_single_node(self):
        assert mediator_of(123, 1) == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            mediator_of(0, 0)
        with pytest.raises(ValueError):
            mediator_of(-1, 4)

    @given(item=st.integers(0, 10_000), p=st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_always_a_valid_node(self, item, p):
        assert 0 <= mediator_of(item, p) < p


class TestCandidateDirectory:
    def test_first_request_sees_empty_list(self):
        d = CandidateDirectory(max_candidates=3)
        assert d.lookup_and_record(7, requester=1) == []

    def test_later_requests_see_most_recent_first(self):
        d = CandidateDirectory(max_candidates=3)
        d.lookup_and_record(7, 1)
        d.lookup_and_record(7, 2)
        assert d.lookup_and_record(7, 3) == [2, 1]
        assert d.peek(7) == [3, 2, 1]

    def test_bounded_by_h(self):
        d = CandidateDirectory(max_candidates=2)
        for node in range(5):
            d.lookup_and_record(0, node)
        assert d.peek(0) == [4, 3]

    def test_duplicate_requester_moves_to_front(self):
        d = CandidateDirectory(max_candidates=3)
        for node in (1, 2, 1):
            d.lookup_and_record(9, node)
        assert d.peek(9) == [1, 2]

    def test_items_independent(self):
        d = CandidateDirectory(max_candidates=2)
        d.lookup_and_record("a", 1)
        d.lookup_and_record("b", 2)
        assert d.peek("a") == [1]
        assert d.peek("b") == [2]
        assert d.tracked_items == 2
        assert d.memory_entries() == 2

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            CandidateDirectory(0)

    @given(
        h=st.integers(1, 5),
        requests=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 9)), max_size=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_candidates_always_distinct_and_bounded(self, h, requests):
        d = CandidateDirectory(h)
        for item, node in requests:
            result = d.lookup_and_record(item, node)
            assert len(result) <= h
            assert len(set(result)) == len(result)


class TestHopStats:
    def test_percentages_sum_to_100(self):
        stats = HopStats(max_hops=3)
        stats.record_hit(1)
        stats.record_hit(1)
        stats.record_hit(2)
        stats.record_miss()
        stats.record_miss(had_candidates=False)
        pct = stats.percentages()
        assert sum(pct.values()) == pytest.approx(100.0)
        assert pct["hit at hop 1"] == pytest.approx(40.0)
        assert pct["miss"] == pytest.approx(40.0)

    def test_empty_percentages_zero(self):
        stats = HopStats(max_hops=2)
        assert all(v == 0.0 for v in stats.percentages().values())

    def test_hop_bounds_enforced(self):
        stats = HopStats(max_hops=2)
        with pytest.raises(ValueError):
            stats.record_hit(0)
        with pytest.raises(ValueError):
            stats.record_hit(3)

    def test_counters(self):
        stats = HopStats(max_hops=2)
        stats.record_hit(2)
        stats.record_miss()
        assert stats.requests == 2
        assert stats.total_hits == 1


class TestRequestOutcome:
    def test_defaults(self):
        out = RequestOutcome(item=5, hit=False)
        assert out.hop == 0
        assert out.provider == -1
