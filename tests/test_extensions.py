"""Tests for the Section 7 (future work) extensions implemented here:

- cache-aware work-stealing (remote victims chosen by data overlap);
- persistent / warm host caches (reuse data from a previous run);
- user-defined pair filters (heuristically reduce the pair set).
"""

import numpy as np
import pytest

from repro.scheduling.quadtree import PairBlock
from repro.scheduling.workstealing import StealOrder, TaskDeque
from repro.sim.cluster import ClusterSpec
from repro.sim.rocketsim import RocketSimConfig, run_simulation
from repro.sim.workload import FORENSICS, scaled_profile


def small_profile(n=48):
    return scaled_profile(FORENSICS, n)


class TestSampleItems:
    def test_samples_within_block_items(self):
        block = PairBlock(4, 12, 8, 20)
        sample = block.sample_items(8)
        assert sample
        assert set(sample) <= set(block.items())
        assert len(sample) <= 8

    def test_empty_block_empty_sample(self):
        assert PairBlock(5, 8, 0, 4).sample_items() == []

    def test_single_cell(self):
        assert PairBlock(0, 1, 1, 2).sample_items(4) == [0, 1]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            PairBlock.root(4).sample_items(0)


class TestPeekStealTarget:
    def test_peek_matches_steal(self):
        dq = TaskDeque(0)
        dq.push("root")
        dq.push("child")
        assert dq.peek_steal_target(StealOrder.LARGEST) == "root"
        assert dq.steal(StealOrder.LARGEST) == "root"
        assert dq.peek_steal_target(StealOrder.SMALLEST) == "child"

    def test_peek_empty(self):
        assert TaskDeque(0).peek_steal_target() is None

    def test_peek_does_not_remove(self):
        dq = TaskDeque(0)
        dq.push("x")
        dq.peek_steal_target()
        assert len(dq) == 1
        assert dq.steals_suffered == 0


class TestCacheAwareStealing:
    def _cfg(self, **kw):
        base = dict(seed=3, device_cache_slots=8, host_cache_slots=12)
        base.update(kw)
        return RocketSimConfig(**base)

    def test_run_completes_with_cache_aware_stealing(self):
        prof = small_profile()
        rep = run_simulation(
            ClusterSpec.homogeneous(4), prof, self._cfg(cache_aware_stealing=True)
        )
        assert sum(rep.pairs_per_gpu.values()) == prof.n_pairs
        assert rep.remote_steals > 0

    def test_deterministic(self):
        prof = small_profile()
        r1 = run_simulation(
            ClusterSpec.homogeneous(4), prof, self._cfg(cache_aware_stealing=True)
        )
        r2 = run_simulation(
            ClusterSpec.homogeneous(4), prof, self._cfg(cache_aware_stealing=True)
        )
        assert r1.runtime == r2.runtime
        assert r1.total_loads == r2.total_loads

    def test_does_not_hurt_reuse(self):
        """Cache-aware victim choice must not increase loads materially."""
        prof = small_profile(64)
        plain = run_simulation(ClusterSpec.homogeneous(6), prof, self._cfg())
        aware = run_simulation(
            ClusterSpec.homogeneous(6), prof, self._cfg(cache_aware_stealing=True)
        )
        assert aware.reuse_factor <= plain.reuse_factor * 1.15

    def test_local_steals_still_preferred(self):
        prof = small_profile()
        rep = run_simulation(
            ClusterSpec.homogeneous(2, gpus_per_node=2),
            prof,
            self._cfg(cache_aware_stealing=True),
        )
        assert rep.local_steals > 0


class TestWarmHostCaches:
    def _cfg(self, **kw):
        base = dict(seed=5, device_cache_slots=8, host_cache_slots=24)
        base.update(kw)
        return RocketSimConfig(**base)

    def test_warm_start_reduces_loads(self):
        """Persistent caches: a second run loads (almost) nothing."""
        prof = small_profile(40)
        cold = run_simulation(ClusterSpec.homogeneous(4), prof, self._cfg())
        warm = run_simulation(
            ClusterSpec.homogeneous(4), prof, self._cfg(warm_host_caches=True)
        )
        assert warm.total_loads < cold.total_loads
        assert warm.runtime <= cold.runtime * 1.05

    def test_fully_warm_single_node_loads_zero(self):
        """One node whose host cache holds the whole data set: R = 0 loads."""
        prof = small_profile(20)
        rep = run_simulation(
            ClusterSpec.homogeneous(1),
            prof,
            RocketSimConfig(
                seed=1, device_cache_slots=20, host_cache_slots=20, warm_host_caches=True
            ),
        )
        assert rep.total_loads == 0
        assert rep.storage_bytes == 0

    def test_warm_caches_complete_correctly(self):
        prof = small_profile(30)
        rep = run_simulation(
            ClusterSpec.homogeneous(3), prof, self._cfg(warm_host_caches=True)
        )
        assert sum(rep.pairs_per_gpu.values()) == prof.n_pairs


class TestPairFilter:
    def _setup(self, n=8):
        from repro.core.rocket import Rocket
        from repro.data.filestore import InMemoryStore
        from repro.runtime.localrocket import RocketConfig
        from tests.test_localrocket import SumApp, make_store

        store, values = make_store(n)
        app = SumApp()
        rocket = Rocket(
            app, store, RocketConfig(n_devices=2, device_cache_slots=4, host_cache_slots=6, seed=2)
        )
        return rocket, sorted(values), values

    def test_filter_restricts_pairs(self):
        rocket, keys, values = self._setup(8)
        accept = lambda a, b: (int(a[-2:]) + int(b[-2:])) % 2 == 0  # noqa: E731
        with pytest.warns(DeprecationWarning, match="FilteredPairs"):
            results = rocket.run(keys, pair_filter=accept)
        expected = {(a, b) for i, a in enumerate(keys) for b in keys[i + 1 :] if accept(a, b)}
        got = {(a, b) for a, b, _ in results.items()}
        assert got == expected
        # Accepted pairs still computed correctly.
        for a, b, v in results.items():
            assert v == pytest.approx(values[a] * values[b])

    def test_filter_skips_loads_of_unneeded_items(self):
        rocket, keys, _ = self._setup(10)
        first_half = set(keys[:5])
        with pytest.warns(DeprecationWarning, match="FilteredPairs"):
            results = rocket.run(
                keys, pair_filter=lambda a, b: a in first_half and b in first_half
            )
        assert len(results) == 10  # C(5,2)
        # Items outside the filter were never loaded.
        assert rocket.last_stats.loads <= 5 + 2  # small slack for races

    def test_reject_all_raises(self):
        rocket, keys, _ = self._setup(4)
        with pytest.warns(DeprecationWarning, match="FilteredPairs"), pytest.raises(
            ValueError, match="rejected every pair"
        ):
            rocket.run(keys, pair_filter=lambda a, b: False)

    def test_no_filter_unchanged(self):
        rocket, keys, _ = self._setup(6)
        results = rocket.run(keys)
        assert results.is_complete()
