"""Tests for the session/job execution API: workloads, handles, reuse.

Four layers:

- workload unit tests: pair sets, block decompositions and counts of
  AllPairs / FilteredPairs / Bipartite / DeltaPairs;
- result-matrix shape tests: ``expected_pairs``, delta ``merge``,
  ``to_dense(fill=nan)`` on partial triangles;
- session behaviour on the local backend (fast): streaming laziness and
  exactly-once delivery, progress, cancellation draining cleanly,
  warm-cache reuse across jobs, failure isolation;
- cross-backend acceptance: ``stream()`` yields the same pair set as
  the result matrix for every workload shape on *both* backends, a
  session's second job measurably hits warm caches, two jobs in one
  session equal two fresh ``Rocket.run()`` calls, and cancellation
  leaks neither worker processes nor ``/dev/shm`` segments.
"""

import math
import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.core.result import ResultMatrix
from repro.core.rocket import Rocket
from repro.core.session import RocketSession, RunState, SessionClosed
from repro.core.workload import (
    AllPairs,
    Bipartite,
    DeltaPairs,
    FilteredPairs,
    as_workload,
)
from repro.data.filestore import InMemoryStore
from repro.runtime.cluster import ClusterConfig, ClusterRocketRuntime
from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig
from repro.scheduling.quadtree import PairBlock

from tests.test_cluster_runtime import SumApp, make_store, shm_segments


CFG = dict(
    n_devices=1,
    device_cache_slots=32,
    host_cache_slots=64,
    leaf_size=2,
    seed=7,
    watchdog_seconds=120.0,
)


def make_backend(name, store, transport="queue", **cfg_overrides):
    cfg = RocketConfig(**dict(CFG, **cfg_overrides))
    if name == "local":
        return LocalRocketRuntime(SumApp(), store, cfg)
    return ClusterRocketRuntime(
        SumApp(), store, cfg,
        cluster=ClusterConfig(
            n_nodes=2, fetch_timeout=20.0, steal_timeout=5.0, transport=transport
        ),
    )


def accept_mod2(a, b):
    """Module-level filter (picklable for the cluster backend)."""
    return (int(a[-2:]) + int(b[-2:])) % 2 == 0


# ----------------------------------------------------------------------
# Workload unit tests


class TestWorkloads:
    KEYS = [f"k{i}" for i in range(8)]

    def test_all_pairs(self):
        w = AllPairs(self.KEYS)
        assert w.n_pairs == 28
        assert w.blocks() == [PairBlock.root(8)]
        assert len(list(w.pairs())) == 28
        assert w.make_result().expected_pairs == 28
        assert "all-pairs" in w.describe()

    def test_filtered_pairs(self):
        w = FilteredPairs(self.KEYS, lambda a, b: a == "k0")
        assert w.n_pairs == 7
        assert set(w.pairs()) == {("k0", k) for k in self.KEYS[1:]}
        assert w.make_result().expected_pairs == 7

    def test_filtered_reject_all_raises(self):
        w = FilteredPairs(self.KEYS, lambda a, b: False)
        with pytest.raises(ValueError, match="rejected every pair"):
            w.n_pairs

    def test_bipartite(self):
        w = Bipartite(self.KEYS[:3], self.KEYS[3:])
        assert w.n_pairs == 3 * 5
        assert w.keys == self.KEYS
        got = set(w.pairs())
        assert got == {(a, b) for a in self.KEYS[:3] for b in self.KEYS[3:]}
        # Single rectangular block, entirely above the diagonal.
        (block,) = w.blocks()
        assert block.count == 15
        assert set(block.pairs()) == {(i, j) for i in range(3) for j in range(3, 8)}

    def test_bipartite_overlap_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            Bipartite(["a", "b"], ["b", "c"])

    def test_delta_pairs(self):
        w = DeltaPairs(self.KEYS[:5], self.KEYS[5:])
        # 5 old x 3 new + C(3, 2) new-internal.
        assert w.n_pairs == 15 + 3
        got = set(w.pairs())
        expected = {(a, b) for a in self.KEYS[:5] for b in self.KEYS[5:]}
        expected |= {("k5", "k6"), ("k5", "k7"), ("k6", "k7")}
        assert got == expected
        # Prior triangle + delta = full triangle of the grown corpus.
        assert math.comb(5, 2) + w.n_pairs == math.comb(8, 2)

    def test_delta_single_new_item(self):
        w = DeltaPairs(self.KEYS[:7], self.KEYS[7:])
        assert w.n_pairs == 7
        assert len(w.blocks()) == 1  # no new-internal triangle needed

    def test_delta_overlap_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            DeltaPairs(["a", "b"], ["b"])

    def test_block_counts_cached_filter_called_once_per_pair(self):
        calls = []

        def flt(a, b):
            calls.append((a, b))
            return True

        w = FilteredPairs(self.KEYS, flt)
        assert w.n_pairs == 28
        assert w.block_counts() == [28]
        assert len(calls) == 28  # the second call reused the cache

    def test_as_workload(self):
        w = as_workload(self.KEYS)
        assert isinstance(w, AllPairs)
        w = as_workload(self.KEYS, accept_mod2)
        assert isinstance(w, FilteredPairs)
        bp = Bipartite(self.KEYS[:2], self.KEYS[2:])
        assert as_workload(bp) is bp
        with pytest.raises(TypeError, match="FilteredPairs"):
            as_workload(bp, accept_mod2)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AllPairs(["a", "a", "b"])


# ----------------------------------------------------------------------
# Result-matrix shapes


class TestResultMatrixShapes:
    def test_expected_pairs_completeness(self):
        rm = ResultMatrix(["a", "b", "c"], expected_pairs=2)
        rm.set("a", "b", 1.0)
        assert not rm.is_complete()
        rm.set("a", "c", 2.0)
        assert rm.is_complete()  # partial triangle, but all expected pairs
        assert rm.n_pairs == 3  # the full triangle is still 3 cells

    def test_expected_pairs_validation(self):
        with pytest.raises(ValueError, match="expected_pairs"):
            ResultMatrix(["a", "b"], expected_pairs=2)
        with pytest.raises(ValueError, match="expected_pairs"):
            ResultMatrix(["a", "b"], expected_pairs=0)

    def test_to_dense_nan_fill_for_incomplete_triangle(self):
        w = Bipartite(["q0", "q1"], ["r0", "r1"])
        rm = w.make_result()
        for a, b in w.pairs():
            rm.set(a, b, 1.0)
        dense = rm.to_dense(fill=float("nan"))
        assert np.isnan(dense[0, 1])  # query-internal: never computed
        assert np.isnan(dense[2, 3])  # reference-internal: never computed
        assert dense[0, 2] == dense[2, 0] == 1.0

    def test_to_condensed_requires_full_triangle(self):
        rm = ResultMatrix(["a", "b", "c"], expected_pairs=2)
        rm.set("a", "b", 1.0)
        rm.set("a", "c", 2.0)
        assert rm.is_complete()
        with pytest.raises(ValueError, match="incomplete"):
            rm.to_condensed()

    def test_merge_delta_into_prior(self):
        old = ["a", "b", "c"]
        new = ["d", "e"]
        prior = AllPairs(old).make_result()
        for idx, (a, b) in enumerate(AllPairs(old).pairs()):
            prior.set(a, b, float(idx))
        delta_w = DeltaPairs(old, new)
        delta = delta_w.make_result()
        for idx, (a, b) in enumerate(delta_w.pairs()):
            delta.set(a, b, 100.0 + idx)
        full = prior.merge(delta)
        assert full.keys == old + new
        assert full.n_pairs == full.expected_pairs == 10
        assert full.is_complete()
        assert full.get("a", "b") == prior.get("a", "b")
        assert full.get("a", "d") == delta.get("a", "d")
        assert list(full.to_condensed()) == pytest.approx(
            [float(v) for _, _, v in full.items()]
        )

    def test_merge_conflict_rejected(self):
        m1 = ResultMatrix(["a", "b"])
        m1.set("a", "b", 1.0)
        m2 = ResultMatrix(["a", "b"])
        m2.set("a", "b", 2.0)
        with pytest.raises(ValueError, match="both matrices"):
            m1.merge(m2)


# ----------------------------------------------------------------------
# Local-backend session behaviour (fast paths)


class TestLocalSession:
    def test_stream_is_lazy_and_exactly_once(self):
        store, keys = make_store(10)
        session = make_backend("local", store).open_session()
        try:
            handle = session.submit(AllPairs(keys))
            seen = []
            for a, b, v in handle.stream():  # consume while the job runs
                seen.append((a, b, v))
            matrix = handle.result()
            assert len(seen) == len(set((a, b) for a, b, _ in seen)) == 45
            assert set(seen) == set(matrix.items())
        finally:
            session.close()

    def test_progress_and_states(self):
        store, keys = make_store(8)
        session = make_backend("local", store).open_session()
        try:
            handle = session.submit(AllPairs(keys))
            assert handle.result().is_complete()
            assert handle.state is RunState.DONE
            assert handle.progress() == (28, 28)
            assert handle.done()
            assert not handle.cancel()  # terminal jobs are not cancellable
        finally:
            session.close()

    def test_second_job_hits_warm_caches(self):
        store, keys = make_store(10)
        session = make_backend("local", store).open_session()
        try:
            first = session.submit(AllPairs(keys))
            first.result()
            assert first.stats.loads == 10
            second = session.submit(AllPairs(keys))
            second.result()
            # Every item is still cached: no loads, and the cache hits
            # of the second job are measured (delta counters).
            assert second.stats.loads == 0
            assert (
                second.stats.device_counters.hits + second.stats.host_counters.hits
                > 0
            )
        finally:
            session.close()

    def test_jobs_queue_serially(self):
        store, keys = make_store(8)
        session = make_backend("local", store).open_session()
        try:
            handles = [session.submit(AllPairs(keys)) for _ in range(3)]
            results = [h.result() for h in handles]
            assert all(r.is_complete() for r in results)
            for a, b, v in results[0].items():
                assert results[1].get(a, b) == v == results[2].get(a, b)
        finally:
            session.close()

    def test_failure_isolated_to_its_job(self):
        class BadApp(SumApp):
            def parse(self, key, file_contents):
                if key == "item03":
                    raise ValueError(f"corrupt file for {key}")
                return super().parse(key, file_contents)

        store, keys = make_store(6)
        runtime = LocalRocketRuntime(BadApp(), store, RocketConfig(**CFG))
        session = runtime.open_session()
        try:
            bad = session.submit(AllPairs(keys))
            with pytest.raises(ValueError, match="corrupt file"):
                bad.result()
            assert bad.state is RunState.FAILED
            # The session survives a failed job; keys avoiding the poison
            # item run fine afterwards.
            good = session.submit(AllPairs([k for k in keys if k != "item03"]))
            assert good.result().is_complete()
        finally:
            session.close()

    def test_cancel_pending_job_never_runs(self):
        store, keys = make_store(8)
        session = make_backend("local", store).open_session()
        try:
            blocker = session.submit(AllPairs(keys))
            queued = session.submit(AllPairs(keys))
            assert queued.cancel()
            blocker.result()
            with pytest.raises(RuntimeError, match="cancelled"):
                queued.result()
            assert queued.state is RunState.CANCELLED
        finally:
            session.close()

    def test_cancel_mid_run_drains_cleanly(self):
        class SlowApp(SumApp):
            def compare(self, key_a, a, key_b, b):
                time.sleep(0.01)
                return super().compare(key_a, a, key_b, b)

        store, keys = make_store(10)
        runtime = LocalRocketRuntime(SlowApp(), store, RocketConfig(**CFG))
        session = runtime.open_session()
        try:
            handle = session.submit(AllPairs(keys))
            streamed = []
            for item in handle.stream():
                streamed.append(item)
                if len(streamed) >= 3:
                    assert handle.cancel()
                    break
            with pytest.raises(RuntimeError, match="cancelled"):
                handle.result(timeout=30.0)
            # Mid-run state fully drained: no leaked admission tokens or
            # pinned slots on the shared engine...
            engine = session._engine
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                if all(st.admission.in_flight == 0 for st in engine.states):
                    break
                time.sleep(0.01)
            assert all(st.admission.in_flight == 0 for st in engine.states)
            assert all(st.cache.pinned_count() == 0 for st in engine.states)
            assert engine.host_cache.pinned_count() == 0
            # ...and the session keeps working.
            again = session.submit(AllPairs(keys[:6]))
            assert again.result(timeout=60.0).is_complete()
        finally:
            session.close()

    def test_stream_buffer_released_without_consumer(self):
        store, keys = make_store(8)
        session = make_backend("local", store).open_session()
        try:
            handle = session.submit(AllPairs(keys))
            handle.result()
            # result()-only consumption must not keep a second copy of
            # every pair alive on the handle...
            assert len(handle._pending_stream) == 0
            # ...while a late stream() still yields the full pair set.
            assert set(handle.stream()) == set(handle.result().items())
        finally:
            session.close()

    def test_submit_after_close_raises(self):
        store, keys = make_store(4)
        session = make_backend("local", store).open_session()
        session.close()
        assert session.closed
        with pytest.raises(SessionClosed):
            session.submit(AllPairs(keys))
        # A double close is a lifecycle bug: loud, not silently ignored.
        with pytest.raises(SessionClosed):
            session.close()

    def test_rocket_session_facade(self):
        store, keys = make_store(8)
        rocket = Rocket(SumApp(), store, RocketConfig(**CFG))
        with rocket.session() as session:
            assert session.backend == "local"
            matrix = session.run(AllPairs(keys))
            assert matrix.is_complete()
            assert session.last_stats.n_pairs == 28
            # Plain key lists are accepted too (AllPairs shorthand).
            handle = session.submit(keys)
            assert handle.result().is_complete()
        assert session.closed

    def test_rocket_session_constructor(self):
        store, keys = make_store(6)
        with RocketSession(SumApp(), store, RocketConfig(**CFG)) as session:
            assert session.run(keys).is_complete()


# ----------------------------------------------------------------------
# Cross-backend acceptance


class TestSessionAcrossBackends:
    N = 10

    def workloads(self, keys):
        return [
            AllPairs(keys),
            FilteredPairs(keys, accept_mod2),
            Bipartite(keys[:4], keys[4:]),
            DeltaPairs(keys[:7], keys[7:]),
        ]

    @pytest.mark.parametrize("backend", ["local", "cluster"])
    def test_stream_matches_matrix_for_every_workload(self, backend):
        store, keys = make_store(self.N)
        session = make_backend(backend, store).open_session()
        try:
            for workload in self.workloads(keys):
                handle = session.submit(workload)
                streamed = list(handle.stream())
                matrix = handle.result()
                assert matrix.is_complete()
                assert len(streamed) == workload.n_pairs
                assert set(streamed) == set(matrix.items())
                assert set((a, b) for a, b, _ in streamed) == set(workload.pairs())
        finally:
            session.close()

    @pytest.mark.parametrize("backend", ["local", "cluster"])
    def test_session_jobs_equal_fresh_runs(self, backend):
        store, keys = make_store(self.N)
        fresh = make_backend(backend, store)
        expected_all = fresh.run(keys)
        expected_delta = fresh.run(DeltaPairs(keys[:7], keys[7:]))

        session = make_backend(backend, store).open_session()
        try:
            first = session.submit(AllPairs(keys)).result()
            second = session.submit(DeltaPairs(keys[:7], keys[7:])).result()
        finally:
            session.close()
        assert set(first.items()) == set(expected_all.items())
        assert set(second.items()) == set(expected_delta.items())

    def test_cluster_second_job_hits_warm_caches(self):
        store, keys = make_store(self.N)
        session = make_backend("cluster", store).open_session()
        try:
            first = session.submit(AllPairs(keys))
            first.result()
            second = session.submit(AllPairs(keys))
            second.result()
            assert second.stats.loads < first.stats.loads
            warm_hits = sum(
                ns.device_counters.hits + ns.host_counters.hits
                for ns in second.stats.node_stats
            )
            assert warm_hits > 0  # measured cache hits on the second job
        finally:
            session.close()

    def test_cluster_cancel_leaks_nothing(self):
        class SlowApp(SumApp):
            def compare(self, key_a, a, key_b, b):
                time.sleep(0.01)
                return super().compare(key_a, a, key_b, b)

        store, keys = make_store(12)
        before = shm_segments()
        runtime = ClusterRocketRuntime(
            SlowApp(), store, RocketConfig(**CFG),
            cluster=ClusterConfig(
                n_nodes=2, transport="shm", fetch_timeout=20.0, steal_timeout=5.0
            ),
        )
        session = runtime.open_session()
        try:
            handle = session.submit(AllPairs(keys))
            # Wait until the job is really in flight, then cancel.
            deadline = time.perf_counter() + 30.0
            while handle.progress()[0] < 2 and time.perf_counter() < deadline:
                time.sleep(0.01)
            assert handle.cancel()
            with pytest.raises(RuntimeError, match="cancelled"):
                handle.result(timeout=60.0)
            # The session survives the cancellation...
            again = session.submit(AllPairs(keys[:6]))
            assert again.result(timeout=60.0).is_complete()
        finally:
            session.close()
        # ...and closing leaks neither processes nor shared memory.
        assert not [p for p in multiprocessing.active_children()
                    if p.name.startswith("rocket-node")]
        assert shm_segments() == before

    def test_cluster_cancel_racing_first_job_handout(self):
        """A cancel issued immediately after submit must not be lost.

        The stop broadcast can reach a node while it is still picking
        the job up (job not yet begun); the node must honour it via the
        early-stop map instead of running the cancelled job to its own
        watchdog.
        """
        store, keys = make_store(10)
        runtime = ClusterRocketRuntime(
            SumApp(), store,
            RocketConfig(**dict(CFG, watchdog_seconds=30.0)),
            cluster=ClusterConfig(n_nodes=2, fetch_timeout=10.0, steal_timeout=2.0),
        )
        session = runtime.open_session()
        try:
            handle = session.submit(AllPairs(keys))
            handle.cancel()  # immediately: races the job hand-out
            t0 = time.perf_counter()
            try:
                handle.result(timeout=25.0)  # rare: the job won the race
            except RuntimeError:
                pass  # cancelled (the expected outcome)
            assert time.perf_counter() - t0 < 20.0, "lost cancel hit the watchdog"
            assert handle.state in (RunState.CANCELLED, RunState.DONE)
            # The session must still serve jobs afterwards.
            again = session.submit(AllPairs(keys[:5]))
            assert again.result(timeout=60.0).is_complete()
        finally:
            session.close()

    def test_cluster_rejects_unpicklable_filter(self):
        store, keys = make_store(6)
        session = make_backend("cluster", store).open_session()
        try:
            with pytest.raises(ValueError, match="picklable"):
                session.submit(FilteredPairs(keys, lambda a, b: True))
        finally:
            session.close()

    def test_cluster_failed_startup_leaks_nothing(self):
        """A session whose processes cannot even start must clean up.

        Under the "spawn" start method an unpicklable application makes
        ``Process.start()`` raise inside ``open_session()``; the
        half-built session is unreachable, so the constructor itself
        must unlink the fabric's segments and kill started processes.
        """
        store, keys = make_store(6)
        app = SumApp()
        app.poison = threading.Lock()  # unpicklable under spawn
        before = shm_segments()
        runtime = ClusterRocketRuntime(
            app, store, RocketConfig(**dict(CFG, watchdog_seconds=30.0)),
            cluster=ClusterConfig(n_nodes=2, start_method="spawn", transport="shm"),
        )
        with pytest.raises(Exception):
            runtime.open_session()
        time.sleep(0.2)
        assert shm_segments() == before
        assert not [p for p in multiprocessing.active_children()
                    if p.name.startswith("rocket-node")]

    def test_cluster_one_shot_run_with_workload(self):
        store, keys = make_store(8)
        runtime = make_backend("cluster", store)
        results = runtime.run(Bipartite(keys[:3], keys[3:]))
        assert results.is_complete()
        assert len(results) == 15
        assert runtime.last_stats.n_pairs == 15
