"""Unit tests for the Section 6.1 performance model."""

import pytest

from repro.model.perfmodel import PerformanceModel, system_efficiency, t_cpu, t_gpu, t_io, t_min
from repro.sim.workload import FORENSICS, MICROSCOPY, WorkloadProfile


def toy_profile(**overrides):
    base = dict(
        name="toy",
        n_items=10,
        file_size=1e6,
        slot_size=1e6,
        result_size=8,
        t_parse=(0.1, 0.0),
        t_preprocess=(0.02, 0.0),
        t_compare=(0.001, 0.0),
        t_postprocess=(0.005, 0.0),
    )
    base.update(overrides)
    return WorkloadProfile(**base)


class TestEquations:
    def test_t_gpu_formula(self):
        p = toy_profile()
        # R=2: 2*10*0.02 + 45*0.001
        assert t_gpu(p, reuse=2.0) == pytest.approx(0.4 + 0.045)

    def test_t_gpu_speed_scaling(self):
        p = toy_profile()
        assert t_gpu(p, speed=2.0) == pytest.approx(t_gpu(p) / 2.0)

    def test_t_cpu_formula(self):
        p = toy_profile()
        assert t_cpu(p, reuse=1.0) == pytest.approx(10 * 0.1 + 45 * 0.005)
        assert t_cpu(p, reuse=1.0, cores=4) == pytest.approx((10 * 0.1 + 45 * 0.005) / 4)

    def test_t_io_formula(self):
        p = toy_profile()
        assert t_io(p, bandwidth=1e6, reuse=3.0) == pytest.approx(3 * 10 * 1.0)

    def test_t_min_is_gpu_at_perfect_reuse(self):
        p = toy_profile()
        assert t_min(p) == pytest.approx(t_gpu(p, reuse=1.0))

    def test_reuse_below_one_rejected(self):
        with pytest.raises(ValueError):
            t_gpu(toy_profile(), reuse=0.5)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            t_io(toy_profile(), bandwidth=0.0)


class TestEfficiency:
    def test_perfect_run_is_100_percent(self):
        p = toy_profile()
        assert system_efficiency(p, t_min(p)) == pytest.approx(1.0)

    def test_p_nodes_divides_bound(self):
        p = toy_profile()
        # Running in T_min/4 on aggregate speed 4 is 100% efficient.
        assert system_efficiency(p, t_min(p) / 4.0, aggregate_speed=4.0) == pytest.approx(1.0)

    def test_slower_run_lower_efficiency(self):
        p = toy_profile()
        assert system_efficiency(p, 2 * t_min(p)) == pytest.approx(0.5)

    def test_invalid_runtime_rejected(self):
        with pytest.raises(ValueError):
            system_efficiency(toy_profile(), 0.0)


class TestPerformanceModel:
    def test_bottleneck_identification(self):
        # Microscopy is GPU-bound; forensics at huge R with tiny IO
        # bandwidth becomes IO-bound.
        gpu_model = PerformanceModel(MICROSCOPY)
        assert gpu_model.bottleneck(reuse=1.0) == "gpu"
        io_model = PerformanceModel(FORENSICS, io_bandwidth=1e5)
        assert io_model.bottleneck(reuse=5.0) == "io"

    def test_predicted_runtime_is_max_of_totals(self):
        m = PerformanceModel(toy_profile(), cpu_cores=1)
        r = 2.0
        expected = max(
            t_gpu(m.profile, r),
            t_cpu(m.profile, r, 1),
            t_io(m.profile, m.io_bandwidth, r),
        )
        assert m.predicted_runtime(r) == pytest.approx(expected)

    def test_efficiency_wrapper(self):
        m = PerformanceModel(toy_profile())
        assert m.efficiency(m.lower_bound()) == pytest.approx(1.0)

    def test_paper_forensics_numbers(self):
        """Sanity vs the paper: forensics T_min ~ 3.9 hours on a TitanX.

        n*t_pre + C(n,2)*t_cmp = 4980*0.0205 + 12397710*0.0011 ~ 13740 s.
        """
        bound = t_min(FORENSICS)
        assert bound == pytest.approx(13740, rel=0.01)


class TestStageCalibration:
    """Online calibration: measured stage costs -> live model."""

    def _calibrated(self):
        from repro.model.perfmodel import StageCalibration

        cal = StageCalibration()
        # Two compare kernels on a full-speed device, two on a
        # quarter-speed one (4x the wall time): identical reference cost.
        cal.record_compare(0.010, speed=1.0)
        cal.record_compare(0.010, speed=1.0)
        cal.record_compare(0.040, speed=0.25)
        cal.record_compare(0.040, speed=0.25)
        cal.record_preprocess(0.020, speed=1.0)
        cal.record_parse(0.005)
        cal.record_postprocess(0.001)
        cal.record_io(1_000_000, 0.01)
        return cal

    def test_speed_normalisation(self):
        cal = self._calibrated()
        assert cal.t_cmp == pytest.approx(0.010)
        assert cal.t_pre == pytest.approx(0.020)
        assert cal.t_parse == pytest.approx(0.005)
        assert cal.t_post == pytest.approx(0.001)
        assert cal.file_size == pytest.approx(1_000_000)
        assert cal.io_bandwidth == pytest.approx(1e8)

    def test_unmeasured_stages_are_zero(self):
        from repro.model.perfmodel import StageCalibration

        cal = StageCalibration()
        assert cal.t_cmp == 0.0 and cal.t_pre == 0.0
        assert cal.io_bandwidth is None
        # A model can still be built (defaults fill the gaps).
        model = cal.model(n_items=4)
        assert model.lower_bound() == 0.0

    def test_merge_accumulates(self):
        from repro.model.perfmodel import StageCalibration

        a = self._calibrated()
        b = StageCalibration()
        b.record_compare(0.030, speed=1.0)
        b.record_io(2_000_000, 0.01)
        a.merge(b)
        assert a.cmp_count == 5
        assert a.t_cmp == pytest.approx((4 * 0.010 + 0.030) / 5)
        assert a.io_bytes == 3_000_000

    def test_model_round_trip(self):
        cal = self._calibrated()
        model = cal.model(n_items=10, aggregate_speed=1.25, cpu_cores=4)
        profile = model.profile
        assert profile.n_items == 10
        assert profile.t_compare[0] == pytest.approx(0.010)
        assert model.aggregate_speed == 1.25
        # T_min = (n*t_pre + C(n,2)*t_cmp) / aggregate_speed
        expected = (10 * 0.020 + 45 * 0.010) / 1.25
        assert model.lower_bound() == pytest.approx(expected)
        assert model.predicted_runtime(1.0) >= model.lower_bound() * 0.999
        assert model.efficiency(expected) == pytest.approx(1.0)

    def test_calibration_is_picklable(self):
        import pickle

        cal = self._calibrated()
        clone = pickle.loads(pickle.dumps(cal))
        assert clone == cal
