"""Integration tests for the simulated Rocket runtime.

These assert the *paper-level behaviours*: completeness, the data-reuse
invariants of the three-level cache, the distributed cache's effect on
R and I/O, work-stealing balance on heterogeneous platforms, and full
determinism of simulated results.
"""

import pytest

from repro.cache.policy import EvictionPolicy
from repro.sim.cluster import ClusterSpec
from repro.sim.rocketsim import RocketSim, RocketSimConfig, run_simulation
from repro.sim.workload import BIOINFORMATICS, FORENSICS, MICROSCOPY, scaled_profile


def small_forensics(n=60):
    return scaled_profile(FORENSICS, n)


def quick_config(**kw):
    defaults = dict(seed=1, device_cache_slots=12, host_cache_slots=24)
    defaults.update(kw)
    return RocketSimConfig(**defaults)


class TestBasicRun:
    def test_all_pairs_completed(self):
        prof = small_forensics(30)
        rep = run_simulation(ClusterSpec.homogeneous(1), prof, quick_config())
        assert rep.n_pairs == 30 * 29 // 2
        assert sum(rep.pairs_per_gpu.values()) == rep.n_pairs
        assert rep.runtime > 0

    def test_reuse_factor_at_least_one(self):
        prof = small_forensics(30)
        rep = run_simulation(ClusterSpec.homogeneous(1), prof, quick_config())
        assert rep.reuse_factor >= 1.0
        assert rep.total_loads >= prof.n_items

    def test_loads_match_per_node_sum(self):
        prof = small_forensics(40)
        rep = run_simulation(ClusterSpec.homogeneous(4), prof, quick_config())
        assert sum(rep.per_node_loads) == rep.total_loads

    def test_single_use_guard(self):
        prof = small_forensics(10)
        sim = RocketSim(ClusterSpec.homogeneous(1), prof.instantiate(0), quick_config())
        sim.run()
        with pytest.raises(Exception):
            sim.run()

    def test_ample_cache_gives_perfect_reuse_single_node(self):
        """With every item fitting in the host cache, R must be exactly 1."""
        prof = small_forensics(24)
        rep = run_simulation(
            ClusterSpec.homogeneous(1),
            prof,
            quick_config(device_cache_slots=24, host_cache_slots=24),
        )
        assert rep.reuse_factor == pytest.approx(1.0)
        assert rep.device_counters.evictions == 0

    def test_summary_mentions_key_metrics(self):
        rep = run_simulation(ClusterSpec.homogeneous(1), small_forensics(16), quick_config())
        text = rep.summary()
        assert "R =" in text and "efficiency" in text

    def test_storage_bytes_match_loads(self):
        prof = small_forensics(30)
        rep = run_simulation(ClusterSpec.homogeneous(1), prof, quick_config())
        # Every load reads one file of ~file_size (+-20%).
        low = rep.total_loads * prof.file_size * 0.8
        high = rep.total_loads * prof.file_size * 1.2
        assert low <= rep.storage_bytes <= high


class TestDeterminism:
    def test_same_seed_same_report(self):
        prof = small_forensics(30)
        spec = ClusterSpec.homogeneous(3)
        r1 = run_simulation(spec, prof, quick_config(seed=5))
        r2 = run_simulation(spec, prof, quick_config(seed=5))
        assert r1.runtime == r2.runtime
        assert r1.total_loads == r2.total_loads
        assert r1.pairs_per_gpu == r2.pairs_per_gpu
        assert r1.hop_stats.hits_at_hop == r2.hop_stats.hits_at_hop
        assert r1.local_steals == r2.local_steals

    def test_different_seed_changes_schedule(self):
        prof = small_forensics(30)
        spec = ClusterSpec.homogeneous(3)
        r1 = run_simulation(spec, prof, quick_config(seed=5))
        r2 = run_simulation(spec, prof, quick_config(seed=6))
        # Work-stealing victim order changes; run time may coincide but
        # the full fingerprint should not.
        fp1 = (r1.runtime, tuple(sorted(r1.pairs_per_gpu.items())), r1.total_loads)
        fp2 = (r2.runtime, tuple(sorted(r2.pairs_per_gpu.items())), r2.total_loads)
        assert fp1 != fp2


class TestDistributedCache:
    def test_distributed_cache_reduces_loads(self):
        prof = small_forensics(48)
        spec = ClusterSpec.homogeneous(6)
        with_dc = run_simulation(spec, prof, quick_config(distributed_cache=True))
        without = run_simulation(spec, prof, quick_config(distributed_cache=False))
        assert with_dc.reuse_factor < without.reuse_factor
        assert with_dc.storage_bytes < without.storage_bytes

    def test_no_protocol_traffic_when_disabled(self):
        prof = small_forensics(30)
        rep = run_simulation(
            ClusterSpec.homogeneous(4), prof, quick_config(distributed_cache=False)
        )
        assert rep.hop_stats.requests == 0
        assert rep.remote_fetch_bytes == 0

    def test_no_protocol_traffic_on_single_node(self):
        rep = run_simulation(ClusterSpec.homogeneous(1), small_forensics(20), quick_config())
        assert rep.hop_stats.requests == 0

    def test_hop_stats_accounting_consistent(self):
        prof = small_forensics(48)
        rep = run_simulation(ClusterSpec.homogeneous(6), prof, quick_config(max_hops=3))
        stats = rep.hop_stats
        assert stats.requests == stats.total_hits + stats.misses + stats.no_candidates
        assert sum(stats.percentages().values()) == pytest.approx(100.0)

    def test_most_hits_at_first_hop(self):
        """Fig. 11's headline: hop 1 dominates the later hops."""
        prof = small_forensics(60)
        rep = run_simulation(ClusterSpec.homogeneous(8), prof, quick_config(max_hops=3))
        hits = rep.hop_stats.hits_at_hop
        assert hits[0] > hits[1] + hits[2]

    def test_remote_fetches_do_not_count_as_loads(self):
        """A distributed-cache hit avoids a load; R reflects that."""
        prof = small_forensics(48)
        spec = ClusterSpec.homogeneous(6)
        rep = run_simulation(spec, prof, quick_config())
        if rep.hop_stats.total_hits > 0:
            assert rep.remote_fetch_bytes > 0
            # Loads + remote hits >= total host-cache fills needed.
            assert rep.total_loads < rep.total_loads + rep.hop_stats.total_hits


class TestScalingBehaviour:
    def test_more_nodes_faster(self):
        prof = small_forensics(48)
        t1 = run_simulation(ClusterSpec.homogeneous(1), prof, quick_config()).runtime
        t4 = run_simulation(ClusterSpec.homogeneous(4), prof, quick_config()).runtime
        assert t4 < t1 / 2.5

    def test_super_linear_regime_with_distributed_cache(self):
        """The paper's headline result, at reduced scale.

        With the distributed cache the combined memory of 4 nodes holds
        far more items than one node, so R drops and speedup exceeds
        the node count (or at least clearly beats the no-cache setup).
        """
        prof = scaled_profile(FORENSICS, 96)
        cfg = dict(device_cache_slots=6, host_cache_slots=20, seed=2)
        t1 = run_simulation(ClusterSpec.homogeneous(1), prof, RocketSimConfig(**cfg)).runtime
        with_dc = run_simulation(
            ClusterSpec.homogeneous(4), prof, RocketSimConfig(distributed_cache=True, **cfg)
        )
        without = run_simulation(
            ClusterSpec.homogeneous(4), prof, RocketSimConfig(distributed_cache=False, **cfg)
        )
        assert with_dc.runtime < without.runtime
        assert t1 / with_dc.runtime > t1 / without.runtime

    def test_compute_bound_app_scales_without_cache_effects(self):
        prof = scaled_profile(MICROSCOPY, 24)
        t1 = run_simulation(ClusterSpec.homogeneous(1), prof, quick_config()).runtime
        t4 = run_simulation(ClusterSpec.homogeneous(4), prof, quick_config()).runtime
        assert 2.8 < t1 / t4 < 5.0

    def test_efficiency_in_sane_band(self):
        prof = scaled_profile(FORENSICS, 150)
        rep = run_simulation(
            ClusterSpec.homogeneous(1),
            prof,
            RocketSimConfig(seed=1, device_cache_slots=9, host_cache_slots=32),
        )
        assert 0.6 < rep.efficiency < 1.1


class TestHeterogeneity:
    def test_faster_gpus_do_more_pairs(self):
        prof = scaled_profile(MICROSCOPY, 28)
        spec = ClusterSpec.das5_heterogeneous()
        rep = run_simulation(spec, prof, quick_config(seed=3))
        by_model = {}
        for lane, pairs in rep.pairs_per_gpu.items():
            model = lane.split("(")[1].rstrip(")")
            by_model.setdefault(model, []).append(pairs)
        # The RTX 2080 Ti must clearly out-process the K20m.
        assert min(by_model["RTX2080Ti"]) > max(by_model["K20m"])

    def test_stealing_spreads_work_from_master_node(self):
        prof = small_forensics(40)
        rep = run_simulation(ClusterSpec.homogeneous(4), prof, quick_config())
        assert rep.remote_steals > 0
        # Every node ends up doing some comparisons.
        assert all(v > 0 for v in rep.pairs_per_gpu.values())


class TestConfigKnobs:
    def test_eviction_policy_changes_results(self):
        prof = small_forensics(60)
        lru = run_simulation(
            ClusterSpec.homogeneous(1), prof, quick_config(eviction=EvictionPolicy.LRU)
        )
        rnd = run_simulation(
            ClusterSpec.homogeneous(1), prof, quick_config(eviction=EvictionPolicy.RANDOM)
        )
        # LRU should not lose to RANDOM on this reuse-heavy pattern.
        assert lru.reuse_factor <= rnd.reuse_factor * 1.05

    def test_profiling_records_trace(self):
        rep = run_simulation(
            ClusterSpec.homogeneous(1), small_forensics(16), quick_config(profiling=True)
        )
        assert rep.trace is not None
        lanes = rep.trace.lanes()
        assert any("GPU" in lane for lane in lanes)
        assert any("CPU" in lane for lane in lanes)
        assert any("IO" in lane for lane in lanes)

    def test_throughput_series_recorded(self):
        rep = run_simulation(
            ClusterSpec.homogeneous(2),
            small_forensics(24),
            quick_config(record_throughput=True),
        )
        assert rep.throughput_series
        assert sum(s.count for s in rep.throughput_series.values()) == rep.n_pairs

    def test_leaf_size_does_not_change_completeness(self):
        prof = small_forensics(24)
        for leaf in (1, 4, 16):
            rep = run_simulation(ClusterSpec.homogeneous(2), prof, quick_config(leaf_size=leaf))
            assert sum(rep.pairs_per_gpu.values()) == prof.n_pairs

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RocketSimConfig(max_hops=0)
        with pytest.raises(ValueError):
            RocketSimConfig(concurrent_jobs=0)
        with pytest.raises(ValueError):
            RocketSimConfig(leaf_size=0)

    def test_too_small_device_cache_rejected(self):
        prof = small_forensics(20)
        with pytest.raises(ValueError, match="at least 2"):
            run_simulation(
                ClusterSpec.homogeneous(1), prof, RocketSimConfig(device_cache_slots=1)
            )


class TestGpuBusyAccounting:
    def test_gpu_busy_split_covers_work(self):
        prof = small_forensics(30)
        rep = run_simulation(ClusterSpec.homogeneous(1), prof, quick_config())
        busy = next(iter(rep.gpu_busy.values()))
        # Comparison busy ~ n_pairs * mean compare time (regular kernel).
        expected_cmp = rep.n_pairs * prof.t_compare[0]
        assert busy["compare"] == pytest.approx(expected_cmp, rel=0.1)
        # Pre-process busy ~ loads * mean preprocess time.
        expected_pre = rep.total_loads * prof.t_preprocess[0]
        assert busy["preprocess"] == pytest.approx(expected_pre, rel=0.15)

    def test_runtime_at_least_gpu_busy(self):
        prof = small_forensics(30)
        rep = run_simulation(ClusterSpec.homogeneous(1), prof, quick_config())
        busy = next(iter(rep.gpu_busy.values()))
        assert rep.runtime >= busy["compare"] + busy["preprocess"] - 1e-9
