"""Unit tests for the application kernels: PRNU, composition vectors, registration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.bioinformatics.composition import (
    composition_vector,
    cv_correlation,
    cv_distance,
    encode_proteome,
    encode_sequence,
    kmer_counts,
    pack_cv,
    unpack_cv,
)
from repro.apps.bioinformatics.phylogeny import clade_sets, neighbor_joining, robinson_foulds
from repro.apps.forensics.prnu import denoise, extract_prnu, ncc
from repro.apps.microscopy.registration import (
    bhattacharyya_similarity,
    gmm_l2_similarity,
    register_pair,
    rigid_transform,
)
from repro.data.synthetic import AMINO_ACIDS, make_template
from repro.util.rng import seeded_rng


# ---------------------------------------------------------------------------
# PRNU
# ---------------------------------------------------------------------------


class TestPrnu:
    def _image_pair(self, same_camera: bool, seed=0, shape=(64, 64), strength=0.08):
        rng = seeded_rng(seed)
        k1 = rng.standard_normal(shape)
        k2 = k1 if same_camera else rng.standard_normal(shape)
        # Smooth scenes (real photographs are dominated by low spatial
        # frequencies); a white-noise scene would drown the PRNU signal.
        xs = np.linspace(0.3, 0.7, shape[1])[None, :]
        ys = np.linspace(0.0, 0.2, shape[0])[:, None]
        scene1 = xs + ys
        scene2 = 0.9 - 0.5 * xs + ys
        img1 = scene1 * (1 + strength * k1) + 0.01 * rng.standard_normal(shape)
        img2 = scene2 * (1 + strength * k2) + 0.01 * rng.standard_normal(shape)
        return img1, img2

    def test_same_camera_correlates(self):
        a, b = self._image_pair(same_camera=True)
        score = ncc(extract_prnu(a), extract_prnu(b))
        assert score > 0.2

    def test_different_cameras_do_not(self):
        a, b = self._image_pair(same_camera=False)
        score = ncc(extract_prnu(a), extract_prnu(b))
        assert abs(score) < 0.1

    def test_residual_zero_mean_unit_norm(self):
        rng = seeded_rng(1)
        residual = extract_prnu(rng.uniform(0, 1, (32, 32)))
        assert abs(residual.mean()) < 1e-10
        assert np.linalg.norm(residual) == pytest.approx(1.0)

    def test_constant_image_gives_zero_residual(self):
        residual = extract_prnu(np.full((16, 16), 0.5))
        assert np.allclose(residual, 0.0)

    def test_ncc_self_correlation_is_one(self):
        rng = seeded_rng(2)
        r = extract_prnu(rng.uniform(0, 1, (16, 16)))
        assert ncc(r, r) == pytest.approx(1.0)

    def test_ncc_antisymmetric_under_negation(self):
        rng = seeded_rng(3)
        r = extract_prnu(rng.uniform(0, 1, (16, 16)))
        assert ncc(r, -r) == pytest.approx(-1.0)

    def test_ncc_symmetric(self):
        rng = seeded_rng(4)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        assert ncc(a, b) == pytest.approx(ncc(b, a))

    def test_ncc_bounded(self):
        rng = seeded_rng(5)
        for _ in range(20):
            a = rng.standard_normal((6, 6))
            b = rng.standard_normal((6, 6))
            assert -1.0 - 1e-12 <= ncc(a, b) <= 1.0 + 1e-12

    def test_ncc_shape_mismatch(self):
        with pytest.raises(ValueError):
            ncc(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_denoise_window_validation(self):
        with pytest.raises(ValueError):
            denoise(np.zeros((4, 4)), window=4)
        with pytest.raises(ValueError):
            denoise(np.zeros(4))

    def test_denoise_smooths(self):
        rng = seeded_rng(6)
        noisy = rng.standard_normal((32, 32))
        assert denoise(noisy).std() < noisy.std()


# ---------------------------------------------------------------------------
# Composition vectors
# ---------------------------------------------------------------------------


class TestComposition:
    def test_encode_sequence_roundtrip_codes(self):
        codes = encode_sequence("ACDY")
        assert codes.tolist() == [0, 1, 2, 19]
        with pytest.raises(ValueError):
            encode_sequence("ACDX1")

    def test_encode_proteome_separators(self):
        codes = encode_proteome(["AC", "DE"])
        assert (codes == -1).sum() == 1
        with pytest.raises(ValueError):
            encode_proteome([])

    def test_kmer_counts_simple(self):
        codes = encode_sequence("AAAA")
        counts = kmer_counts(codes, 2)
        assert counts[0] == 3  # "AA" three times
        assert counts.sum() == 3

    def test_kmers_do_not_span_proteins(self):
        joined = encode_proteome(["AA", "AA"])
        counts = kmer_counts(joined, 2)
        assert counts[0] == 2  # one "AA" per protein, none across the break

    def test_composition_vector_sparse_and_sorted(self):
        rng = seeded_rng(0)
        seq = "".join(rng.choice(list(AMINO_ACIDS), 500))
        idx, vals = composition_vector(encode_sequence(seq), k=3)
        assert len(idx) == len(vals) > 0
        assert (np.diff(idx) > 0).all()
        assert len(idx) < 20**3  # sparse

    def test_k_validation(self):
        with pytest.raises(ValueError):
            composition_vector(encode_sequence("ACDEF"), k=2)
        with pytest.raises(ValueError):
            composition_vector(encode_sequence("AC"), k=3)

    def test_self_correlation_is_one(self):
        rng = seeded_rng(1)
        seq = "".join(rng.choice(list(AMINO_ACIDS), 400))
        cv = composition_vector(encode_sequence(seq), k=3)
        assert cv_correlation(cv, cv) == pytest.approx(1.0)
        assert cv_distance(cv, cv) == pytest.approx(0.0, abs=1e-12)

    def test_distance_symmetric_and_bounded(self):
        rng = seeded_rng(2)
        seqs = ["".join(rng.choice(list(AMINO_ACIDS), 300)) for _ in range(4)]
        cvs = [composition_vector(encode_sequence(s), k=3) for s in seqs]
        for i in range(4):
            for j in range(i + 1, 4):
                d_ij = cv_distance(cvs[i], cvs[j])
                d_ji = cv_distance(cvs[j], cvs[i])
                assert d_ij == pytest.approx(d_ji)
                assert 0.0 <= d_ij <= 1.0

    def test_related_sequences_closer_than_unrelated(self):
        rng = seeded_rng(3)
        base = rng.integers(0, 20, 600).astype(np.int16)
        # 5% mutated copy vs a completely fresh sequence.
        mutated = base.copy()
        sites = rng.random(600) < 0.05
        mutated[sites] = rng.integers(0, 20, int(sites.sum()))
        fresh = rng.integers(0, 20, 600).astype(np.int16)
        cv_base = composition_vector(base, k=3)
        cv_mut = composition_vector(mutated, k=3)
        cv_fresh = composition_vector(fresh, k=3)
        assert cv_distance(cv_base, cv_mut) < cv_distance(cv_base, cv_fresh)

    def test_pack_unpack_roundtrip(self):
        idx = np.array([1, 5, 9], dtype=np.int64)
        vals = np.array([0.5, -1.0, 2.0])
        idx2, vals2 = unpack_cv(pack_cv(idx, vals))
        assert np.array_equal(idx, idx2)
        assert np.array_equal(vals, vals2)
        with pytest.raises(ValueError):
            unpack_cv(np.zeros((3, 4)))

    def test_disjoint_support_zero_correlation(self):
        a = (np.array([1, 2]), np.array([1.0, 1.0]))
        b = (np.array([3, 4]), np.array([1.0, 1.0]))
        assert cv_correlation(a, b) == 0.0


# ---------------------------------------------------------------------------
# Neighbour joining
# ---------------------------------------------------------------------------


class TestPhylogeny:
    def _additive_tree_distances(self):
        """The textbook 4-taxon additive example with known topology ((a,b),(c,d))."""
        names = ["a", "b", "c", "d"]
        dist = np.array(
            [
                [0, 3, 7, 8],
                [3, 0, 6, 7],
                [7, 6, 0, 3],
                [8, 7, 3, 0],
            ],
            dtype=float,
        )
        return dist, names

    def test_recovers_additive_topology(self):
        dist, names = self._additive_tree_distances()
        tree = neighbor_joining(dist, names)
        clades = clade_sets(tree)
        assert frozenset({"a", "b"}) in clades or frozenset({"c", "d"}) in clades

    def test_two_taxa(self):
        tree = neighbor_joining(np.array([[0.0, 5.0], [5.0, 0.0]]), ["x", "y"])
        assert tree.edges["x", "y"]["length"] == pytest.approx(5.0)

    def test_tree_properties(self):
        import networkx as nx

        dist, names = self._additive_tree_distances()
        tree = neighbor_joining(dist, names)
        assert nx.is_tree(tree)
        for leaf in names:
            assert tree.degree(leaf) == 1
        for node in tree.nodes:
            if isinstance(node, int):
                assert tree.degree(node) == 3  # unrooted binary internal nodes

    def test_validation(self):
        with pytest.raises(ValueError):
            neighbor_joining(np.zeros((2, 3)), ["a", "b"])
        with pytest.raises(ValueError):
            neighbor_joining(np.array([[0.0, 1.0], [2.0, 0.0]]), ["a", "b"])  # asymmetric
        with pytest.raises(ValueError):
            neighbor_joining(np.array([[1.0, 0.0], [0.0, 0.0]]), ["a", "b"])  # diag
        with pytest.raises(ValueError):
            neighbor_joining(np.zeros((2, 2)), ["a", "a"])  # duplicate names

    def test_rf_zero_for_same_tree(self):
        dist, names = self._additive_tree_distances()
        t1 = neighbor_joining(dist, names)
        t2 = neighbor_joining(dist, names)
        assert robinson_foulds(t1, t2) == 0

    def test_rf_leaf_mismatch_rejected(self):
        dist, names = self._additive_tree_distances()
        t1 = neighbor_joining(dist, names)
        t2 = neighbor_joining(dist[:3, :3], names[:3])
        with pytest.raises(ValueError):
            robinson_foulds(t1, t2)

    @given(n=st.integers(4, 9))
    @settings(max_examples=15, deadline=None)
    def test_nj_on_random_metric_produces_valid_tree(self, n):
        import networkx as nx

        rng = seeded_rng(n)
        pts = rng.uniform(0, 1, (n, 3))
        dist = np.sqrt(((pts[:, None] - pts[None]) ** 2).sum(-1))
        names = [f"t{i}" for i in range(n)]
        tree = neighbor_joining(dist, names)
        assert nx.is_tree(tree)
        assert {v for v in tree.nodes if isinstance(v, str)} == set(names)
        assert all(d["length"] >= 0 for _, _, d in tree.edges(data=True))


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------


class TestRegistration:
    def test_rigid_transform_identity(self):
        pts = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(rigid_transform(pts, 0.0, 0.0, 0.0), pts)

    def test_rigid_transform_quarter_turn(self):
        pts = np.array([[1.0, 0.0]])
        out = rigid_transform(pts, np.pi / 2, 0.0, 0.0)
        assert np.allclose(out, [[0.0, 1.0]], atol=1e-12)

    def test_rigid_transform_shape_check(self):
        with pytest.raises(ValueError):
            rigid_transform(np.zeros(3), 0, 0, 0)

    def test_similarity_peaks_at_alignment(self):
        tmpl = make_template("ring", 32)
        aligned = gmm_l2_similarity(tmpl, tmpl)
        shifted = gmm_l2_similarity(tmpl, tmpl + 0.5)
        assert aligned > shifted

    def test_bhattacharyya_wider_kernel(self):
        """At the same sigma the Bhattacharyya overlap decays slower."""
        x = np.array([[0.0, 0.0]])
        y = np.array([[0.2, 0.0]])
        assert bhattacharyya_similarity(x, y) > gmm_l2_similarity(x, y)

    def test_similarity_validation(self):
        with pytest.raises(ValueError):
            gmm_l2_similarity(np.zeros((2, 2)), np.zeros((2, 2)), sigma=0.0)

    def test_empty_cloud_scores_zero(self):
        assert gmm_l2_similarity(np.zeros((0, 2)), np.zeros((3, 2))) == 0.0

    def test_register_recovers_known_transform(self):
        tmpl = make_template("ring", 40)
        rng = seeded_rng(7)
        theta_true = 0.9
        moved = rigid_transform(tmpl, theta_true, 0.15, -0.1)
        moved += 0.01 * rng.standard_normal(moved.shape)
        result = register_pair(moved, tmpl, restarts=8, seed=1)
        # The recovered rotation must match the applied one (ring+bar has
        # a unique optimum).
        err = abs((result.theta - theta_true + np.pi) % (2 * np.pi) - np.pi)
        assert err < 0.15
        # The absolute score is small (mean over all n*m point pairs);
        # what matters is that it beats misaligned scores.  A rotated
        # ring still overlaps itself strongly (the structure is nearly
        # rotationally symmetric), so the margin over a wrong rotation is
        # modest; the margin over a wrong translation is large.
        wrong_rotation = bhattacharyya_similarity(
            moved, rigid_transform(tmpl, theta_true + np.pi / 2, 0.15, -0.1)
        )
        wrong_translation = bhattacharyya_similarity(
            moved, rigid_transform(tmpl, theta_true, 1.2, 1.2)
        )
        assert result.score > 1.2 * wrong_rotation
        assert result.score > 5 * wrong_translation
        assert result.evaluations > 0

    def test_register_result_transform_applies(self):
        tmpl = make_template("ring", 24)
        result = register_pair(tmpl, tmpl, restarts=2, seed=0)
        moved = result.transform(tmpl)
        assert moved.shape == tmpl.shape

    def test_register_deterministic_under_seed(self):
        tmpl = make_template("ring", 24)
        r1 = register_pair(tmpl, tmpl + 0.05, restarts=2, seed=9)
        r2 = register_pair(tmpl, tmpl + 0.05, restarts=2, seed=9)
        assert r1.score == r2.score and r1.theta == r2.theta

    def test_register_validation(self):
        tmpl = make_template("ring", 16)
        with pytest.raises(ValueError):
            register_pair(tmpl, tmpl, restarts=0)
        with pytest.raises(ValueError):
            register_pair(tmpl, tmpl, method="nope")

    def test_irregular_evaluation_counts(self):
        """Different pairs cost different numbers of evaluations (Fig. 7)."""
        rng = seeded_rng(11)
        tmpl = make_template("ring", 24)
        counts = set()
        for s in range(4):
            noisy = tmpl + 0.05 * rng.standard_normal(tmpl.shape)
            counts.add(register_pair(tmpl, noisy, restarts=3, seed=s).evaluations)
        assert len(counts) > 1
