"""Tests for the observability layer: tracing, metrics, structured logs.

Four layers:

- :class:`TraceRecorder` unit tests: the ``by_label`` lane summary,
  thread safety under concurrent recording, the ``max_events`` bound
  with its drop counter, and the disabled path recording nothing and
  allocating no per-event objects;
- :class:`ProfileTrace` merge tests: multi-process Chrome output with
  real pid/tid mapping and metadata records, offset rebasing;
- end-to-end profiled runs: a cluster session produces one merged
  trace with spans from the coordinator *and every node process*
  (distinct pids, job-id-tagged), and ``Rocket.run(profile=...)``
  writes a loadable Perfetto JSON even when the configured backend has
  profiling off;
- ``session.metrics()`` consistency with :class:`RunStats`, and the
  JSON-lines structured log format.
"""

import io
import json
import logging
import os
import threading
import tracemalloc

import pytest

from repro.core.rocket import Rocket
from repro.core.workload import AllPairs
from repro.obs import MetricsRegistry, configure_logging, get_logger
from repro.runtime.cluster import ClusterConfig, ClusterRocketRuntime
from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig
from repro.util.trace import (
    ProfileTrace,
    TraceEvent,
    TraceRecorder,
    lane_summary,
    to_chrome_trace,
)

from tests.test_cluster_runtime import SumApp, make_store

CFG = dict(
    n_devices=1,
    device_cache_slots=32,
    host_cache_slots=64,
    leaf_size=2,
    seed=7,
    watchdog_seconds=120.0,
)


# ----------------------------------------------------------------------
# TraceRecorder unit tests


class TestTraceRecorder:
    def test_lane_summary_by_label(self):
        rec = TraceRecorder()
        rec.record("GPU0", "preprocess", 0.0, 1.0)
        rec.record("GPU0", "compare", 1.0, 4.0)
        rec.record("GPU0", "compare", 4.0, 5.0)
        rec.record("CPU", "parse", 0.0, 2.0)
        summary = lane_summary(rec)
        gpu = summary["GPU0"]
        assert gpu["busy"] == pytest.approx(5.0)
        assert gpu["tasks"] == 3
        assert gpu["utilization"] == pytest.approx(1.0)
        assert gpu["by_label"] == pytest.approx({"preprocess": 1.0, "compare": 4.0})
        assert summary["CPU"]["by_label"] == pytest.approx({"parse": 2.0})

    def test_concurrent_recording_is_thread_safe(self):
        rec = TraceRecorder()
        n_threads, n_each = 8, 500

        def work(tid):
            for i in range(n_each):
                rec.record(f"lane{tid}", "task", float(i), float(i) + 0.5, job_id=tid)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(rec) == n_threads * n_each
        assert rec.dropped == 0
        assert len(rec.lanes()) == n_threads

    def test_max_events_bound_counts_drops(self):
        rec = TraceRecorder(max_events=10)
        for i in range(25):
            rec.record("L", "t", float(i), float(i + 1))
        assert len(rec) == 10
        assert rec.dropped == 15
        rec.clear()
        assert len(rec) == 0 and rec.dropped == 0

    def test_extend_respects_bound(self):
        rec = TraceRecorder(max_events=3)
        rec.extend(TraceEvent("L", "t", float(i), float(i + 1)) for i in range(5))
        assert len(rec) == 3
        assert rec.dropped == 2

    def test_disabled_recorder_records_nothing(self):
        rec = TraceRecorder(enabled=False)
        rec.record("L", "t", 0.0, 1.0)
        rec.extend([TraceEvent("L", "t", 0.0, 1.0)])
        assert len(rec) == 0
        assert rec.dropped == 0

    def test_disabled_path_allocates_no_event_objects(self):
        """The paper's default (profiling off) must stay near-zero-cost."""
        rec = TraceRecorder(enabled=False)
        rec.record("L", "t", 0.0, 1.0)  # warm up the code path
        tracemalloc.start()
        try:
            for _ in range(10_000):
                rec.record("GPU0", "compare", 0.0, 1.0, job_id=3)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert len(rec) == 0
        # 10k TraceEvents would be megabytes; the disabled path returns
        # before constructing anything, so the peak stays trivial.
        assert peak < 64 * 1024

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_events=0)
        with pytest.raises(ValueError):
            TraceEvent("L", "t", 2.0, 1.0)


# ----------------------------------------------------------------------
# Chrome / Perfetto output


class TestProfileTrace:
    def test_single_recorder_chrome_events(self):
        rec = TraceRecorder()
        rec.record("GPU0", "compare", 0.5, 1.5, job_id=7)
        events = to_chrome_trace(rec, pid=42)
        assert len(events) == 1
        (e,) = events
        assert e["ph"] == "X" and e["pid"] == 42
        assert e["ts"] == pytest.approx(0.5e6)
        assert e["dur"] == pytest.approx(1.0e6)
        assert e["args"] == {"lane": "GPU0", "job_id": 7}

    def test_merge_rebases_and_names_processes(self, tmp_path):
        trace = ProfileTrace()
        trace.add_process(
            "coordinator", [TraceEvent("scheduler", "run", 0.0, 2.0)], pid=100
        )
        trace.add_process(
            "node0",
            [TraceEvent("gpu0", "compare", 0.0, 1.0, job_id=1)],
            pid=200,
            offset=0.5,
        )
        assert trace.pids() == [100, 200]
        assert trace.process_name(200) == "node0"
        # Rebasing shifted the node event onto the session clock.
        (node_event,) = trace.events_for_pid(200)
        assert node_event.start == pytest.approx(0.5)
        assert node_event.end == pytest.approx(1.5)

        chrome = trace.to_chrome()
        meta = [e for e in chrome if e["ph"] == "M"]
        spans = [e for e in chrome if e["ph"] == "X"]
        names = {
            (e["pid"], e["args"]["name"]) for e in meta if e["name"] == "process_name"
        }
        assert names == {(100, "coordinator"), (200, "node0")}
        assert {e["pid"] for e in spans} == {100, 200}

        path = trace.save(str(tmp_path / "trace.json"))
        with open(path, encoding="utf-8") as fh:
            loaded = json.load(fh)
        assert len(loaded["traceEvents"]) == len(chrome)


# ----------------------------------------------------------------------
# End-to-end profiled runs


class TestProfiledRuns:
    def test_local_disabled_run_records_nothing(self):
        store, keys = make_store(6)
        runtime = LocalRocketRuntime(SumApp(), store, RocketConfig(**CFG))
        runtime.run(keys)
        assert runtime.last_stats.trace is None
        session = runtime.open_session()
        try:
            session.submit(AllPairs(keys)).result()
            assert session.profile().n_events == 0
        finally:
            session.close()

    def test_local_profiled_session_traces_jobs(self):
        store, keys = make_store(6)
        runtime = LocalRocketRuntime(
            SumApp(), store, RocketConfig(profiling=True, **CFG)
        )
        session = runtime.open_session()
        try:
            handle = session.submit(AllPairs(keys))
            handle.result()
            job_id = handle.accounting.job_id
            trace = session.profile()
        finally:
            session.close()
        assert trace.pids() == [os.getpid()]
        events = trace.events_for_pid(os.getpid())
        lanes = {e.lane for e in events}
        assert "scheduler" in lanes
        assert any(lane.startswith("gpu") for lane in lanes)
        labels = {e.label for e in events}
        assert {"compare", "queued", "run"} <= labels
        assert any(e.job_id == job_id for e in events)

    def test_cluster_profiled_run_merges_all_processes(self, tmp_path):
        """The tentpole acceptance: one trace, spans from every process."""
        n_nodes = 2
        store, keys = make_store(8)
        runtime = ClusterRocketRuntime(
            SumApp(),
            store,
            RocketConfig(profiling=True, **CFG),
            cluster=ClusterConfig(n_nodes=n_nodes, fetch_timeout=20.0, steal_timeout=5.0),
        )
        session = runtime.open_session()
        try:
            handle = session.submit(AllPairs(keys))
            handle.result()
            job_id = handle.accounting.job_id
            trace = session.profile()
        finally:
            session.close()

        # Coordinator plus every node process, under distinct real pids.
        pids = trace.pids()
        assert len(pids) == n_nodes + 1
        assert os.getpid() in pids
        names = {trace.process_name(pid) for pid in pids}
        assert names == {"coordinator"} | {f"node{i}" for i in range(n_nodes)}

        # Every node contributed job-tagged pipeline spans.
        for pid in pids:
            events = trace.events_for_pid(pid)
            assert events, f"no spans from pid {pid}"
            assert any(e.job_id == job_id for e in events)
        node_pids = [p for p in pids if p != os.getpid()]
        for pid in node_pids:
            assert any(e.label == "compare" for e in trace.events_for_pid(pid))

        # Node events were rebased onto the session clock: nothing may
        # end before the session started or start absurdly late.
        assert all(e.start >= 0.0 for pid in pids for e in trace.events_for_pid(pid))

        # The saved file is loadable and keeps the per-process split.
        path = trace.save(str(tmp_path / "cluster_trace.json"))
        with open(path, encoding="utf-8") as fh:
            loaded = json.load(fh)
        span_pids = {e["pid"] for e in loaded["traceEvents"] if e["ph"] == "X"}
        assert span_pids == set(pids)

    def test_rocket_run_profile_writes_trace(self, tmp_path):
        """``Rocket.run(profile=...)`` works even with profiling off."""
        store, keys = make_store(6)
        rocket = Rocket(SumApp(), store, RocketConfig(**CFG))
        out = str(tmp_path / "run_trace.json")
        baseline = rocket.run(keys)
        results = rocket.run(keys, profile=out)
        for a, b, v in baseline.items():
            assert results.get(a, b) == v
        with open(out, encoding="utf-8") as fh:
            loaded = json.load(fh)
        assert loaded["traceEvents"], "profiled run produced an empty trace"
        # The temporary profiling backend reported its stats back.
        assert rocket.last_stats is not None


# ----------------------------------------------------------------------
# Metrics


class TestMetricsRegistry:
    def test_nested_snapshot_and_kinds(self):
        m = MetricsRegistry()
        m.inc("cache.device.hits", 3)
        m.inc("cache.device.hits")
        m.set_gauge("scheduler.queue_depth", 2)
        for v in (0.1, 0.2, 0.3):
            m.observe("jobs.runtime_seconds", v)
        snap = m.snapshot()
        assert snap["cache"]["device"]["hits"] == 4
        assert snap["scheduler"]["queue_depth"] == 2
        hist = snap["jobs"]["runtime_seconds"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(0.6)
        assert hist["min"] == pytest.approx(0.1)
        assert hist["max"] == pytest.approx(0.3)
        assert 0.1 <= hist["p50"] <= 0.3
        json.dumps(snap)  # must be plain data throughout

    def test_kind_conflicts_and_bad_values(self):
        m = MetricsRegistry()
        m.counter("a.b")
        with pytest.raises(TypeError):
            m.gauge("a.b")
        with pytest.raises(ValueError):
            m.inc("a.b", -1)
        m.inc("a.b.c")  # prefix collision surfaces at snapshot time
        with pytest.raises(ValueError):
            m.snapshot()

    def test_session_metrics_match_run_stats(self):
        store, keys = make_store(6)
        runtime = LocalRocketRuntime(SumApp(), store, RocketConfig(**CFG))
        session = runtime.open_session()
        try:
            handle = session.submit(AllPairs(keys))
            handle.result()
            stats = handle.stats
            snap = session.metrics()
        finally:
            session.close()
        assert snap["jobs"]["completed"] == 1
        assert snap["pairs"]["completed"] == stats.n_pairs
        assert snap["pipeline"]["loads"] == stats.loads
        dc = stats.device_counters
        assert snap["cache"]["device"]["hits"] == dc.hits + dc.hits_while_writing
        assert snap["cache"]["device"]["misses"] == dc.misses
        assert snap["jobs"]["runtime_seconds"]["count"] == 1
        recent = snap["jobs"]["recent"]
        assert len(recent) == 1
        assert recent[0]["job_id"] == handle.accounting.job_id
        assert recent[0]["pairs_completed"] == stats.n_pairs
        json.dumps(snap)


# ----------------------------------------------------------------------
# Structured logging


class TestStructuredLogging:
    @pytest.fixture(autouse=True)
    def _reset_rocket_logging(self):
        yield
        root = logging.getLogger("rocket")
        for handler in list(root.handlers):
            root.removeHandler(handler)
        root.setLevel(logging.NOTSET)
        root.propagate = True

    def test_json_lines_format(self):
        stream = io.StringIO()
        configure_logging(json_lines=True, level=logging.DEBUG, stream=stream)
        log = get_logger("cluster.coordinator", node=1)
        log.info("job started", job_id=3)
        log.warning("job failed: %s", "boom", job_id=4)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert lines[0] == {
            "ts": lines[0]["ts"],
            "level": "INFO",
            "component": "cluster.coordinator",
            "msg": "job started",
            "job_id": 3,
            "node": 1,
        }
        assert lines[1]["level"] == "WARNING"
        assert lines[1]["msg"] == "job failed: boom"
        assert lines[1]["job_id"] == 4

    def test_text_format_carries_context(self):
        stream = io.StringIO()
        configure_logging(json_lines=False, level=logging.INFO, stream=stream)
        get_logger("session.local").info("session open", job_id=9)
        line = stream.getvalue().strip()
        assert "session.local" in line
        assert "session open" in line
        assert "job_id=9" in line

    def test_library_is_silent_by_default(self, capsys):
        store, keys = make_store(4)
        runtime = LocalRocketRuntime(SumApp(), store, RocketConfig(**CFG))
        runtime.run(keys)
        captured = capsys.readouterr()
        assert "session open" not in captured.err
        assert "session open" not in captured.out

    def test_configured_session_emits_lifecycle_events(self):
        stream = io.StringIO()
        configure_logging(json_lines=True, level=logging.INFO, stream=stream)
        store, keys = make_store(4)
        runtime = LocalRocketRuntime(SumApp(), store, RocketConfig(**CFG))
        runtime.run(keys)
        records = [json.loads(line) for line in stream.getvalue().splitlines()]
        messages = [r["msg"] for r in records]
        assert "session open" in messages
        assert "job done" in messages
        assert "session closed" in messages
        done = next(r for r in records if r["msg"] == "job done")
        assert done["component"] == "session.local"
        assert "job_id" in done
