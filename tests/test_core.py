"""Unit tests for the core package: buffers, result matrix, API contract."""

import numpy as np
import pytest

from repro.core.api import Application
from repro.core.buffers import DeviceBuffer, HostBuffer
from repro.core.result import ResultMatrix


class TestHostBuffer:
    def test_bytes_payload(self):
        buf = HostBuffer(b"abc")
        assert buf.nbytes == 3
        with pytest.raises(TypeError):
            buf.as_array()

    def test_array_payload(self):
        arr = np.zeros(10, dtype=np.float64)
        buf = HostBuffer(arr)
        assert buf.nbytes == 80
        assert buf.as_array() is arr

    def test_unsupported_payload(self):
        with pytest.raises(TypeError):
            HostBuffer({"not": "supported"}).nbytes


class TestDeviceBuffer:
    def test_ownership_check(self):
        buf = DeviceBuffer(np.zeros(4), "gpu0")
        buf.check_device("gpu0")
        with pytest.raises(RuntimeError, match="transfer is missing"):
            buf.check_device("gpu1")

    def test_requires_ndarray(self):
        with pytest.raises(TypeError):
            DeviceBuffer([1, 2, 3], "gpu0")  # type: ignore[arg-type]

    def test_nbytes(self):
        assert DeviceBuffer(np.zeros(8, dtype=np.float32), "g").nbytes == 32


class TestResultMatrix:
    def test_set_get_unordered(self):
        rm = ResultMatrix(["a", "b", "c"])
        rm.set("b", "a", 1.5)
        assert rm.get("a", "b") == 1.5
        assert rm.get("b", "a") == 1.5

    def test_counts(self):
        rm = ResultMatrix(["a", "b", "c"])
        assert rm.n_pairs == 3
        assert len(rm) == 0
        rm.set("a", "b", 1.0)
        assert len(rm) == 1
        assert not rm.is_complete()

    def test_duplicate_set_rejected(self):
        rm = ResultMatrix(["a", "b"])
        rm.set("a", "b", 1.0)
        with pytest.raises(ValueError):
            rm.set("b", "a", 2.0)

    def test_diagonal_rejected(self):
        rm = ResultMatrix(["a", "b"])
        with pytest.raises(KeyError):
            rm.set("a", "a", 0.0)

    def test_unknown_key(self):
        rm = ResultMatrix(["a", "b"])
        with pytest.raises(KeyError):
            rm.get("a", "zz")

    def test_missing_pair(self):
        rm = ResultMatrix(["a", "b"])
        with pytest.raises(KeyError):
            rm.get("a", "b")

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            ResultMatrix(["a", "a"])

    def test_items_ordering(self):
        rm = ResultMatrix(["a", "b", "c"])
        rm.set("b", "c", 3.0)
        rm.set("a", "b", 1.0)
        rm.set("a", "c", 2.0)
        assert [v for _, _, v in rm.items()] == [1.0, 2.0, 3.0]

    def test_to_dense_symmetric(self):
        rm = ResultMatrix(["a", "b"])
        rm.set("a", "b", 5.0)
        dense = rm.to_dense()
        assert dense[0, 1] == dense[1, 0] == 5.0
        assert dense[0, 0] == 0.0

    def test_to_condensed_matches_scipy_convention(self):
        rm = ResultMatrix(["a", "b", "c"])
        rm.set("a", "b", 1.0)
        rm.set("a", "c", 2.0)
        rm.set("b", "c", 3.0)
        cond = rm.to_condensed()
        assert list(cond) == [1.0, 2.0, 3.0]
        # Condensed vector must be accepted by scipy's squareform.
        from scipy.spatial.distance import squareform

        dense = squareform(cond)
        assert dense[1, 2] == 3.0

    def test_to_condensed_incomplete_rejected(self):
        rm = ResultMatrix(["a", "b", "c"])
        rm.set("a", "b", 1.0)
        with pytest.raises(ValueError, match="incomplete"):
            rm.to_condensed()


class _Toy(Application[str, float]):
    def file_name(self, key):
        return key

    def parse(self, key, file_contents):
        return np.frombuffer(file_contents, dtype=np.uint8).astype(np.float64)

    def compare(self, key_a, a, key_b, b):
        return np.asarray(float(a.sum() + b.sum()))


class TestApplicationContract:
    def test_default_preprocess_is_identity(self):
        app = _Toy()
        arr = np.arange(4, dtype=np.float64)
        assert app.preprocess("k", arr) is arr

    def test_default_postprocess_passthrough(self):
        app = _Toy()
        raw = np.asarray(7.0)
        assert app.postprocess("a", "b", raw) is raw

    def test_validate_keys(self):
        app = _Toy()
        app.validate_keys(["a", "b"])
        with pytest.raises(ValueError):
            app.validate_keys(["only"])
        with pytest.raises(ValueError):
            app.validate_keys(["a", "a"])

    def test_slot_hint_default_none(self):
        assert _Toy().slot_nbytes_hint() is None

    def test_abstract_methods_enforced(self):
        with pytest.raises(TypeError):
            Application()  # type: ignore[abstract]
