"""Unit tests for deques, topology, and victim selection."""

import numpy as np
import pytest

from repro.scheduling.quadtree import PairBlock
from repro.scheduling.throttle import SimAdmission, ThreadAdmission
from repro.scheduling.workstealing import (
    StealOrder,
    StealPolicy,
    TaskDeque,
    VictimSelector,
    WorkerTopology,
    steal_split_depth,
)
from repro.sim.engine import Environment


class TestTaskDeque:
    def test_owner_pops_lifo(self):
        dq = TaskDeque(0)
        dq.push("a")
        dq.push("b")
        assert dq.pop() == "b"
        assert dq.pop() == "a"
        assert dq.pop() is None

    def test_thief_steals_oldest_with_largest_order(self):
        dq = TaskDeque(0)
        dq.push("root")
        dq.push("child")
        assert dq.steal(StealOrder.LARGEST) == "root"

    def test_smallest_order_steals_bottom(self):
        dq = TaskDeque(0)
        dq.push("root")
        dq.push("child")
        assert dq.steal(StealOrder.SMALLEST) == "child"

    def test_steal_empty_returns_none(self):
        assert TaskDeque(0).steal() is None

    def test_push_children_preserves_dfs_order(self):
        dq = TaskDeque(0)
        dq.push_children(["c1", "c2", "c3"])
        assert dq.pop() == "c1"  # first child worked on first
        assert dq.steal() == "c3"  # last child is the steal target

    def test_counters(self):
        dq = TaskDeque(0)
        dq.push("a")
        dq.pop()
        dq.push("b")
        dq.steal()
        assert (dq.pushes, dq.pops, dq.steals_suffered) == (2, 1, 1)

    def test_stealing_preserves_block_semantics(self):
        """Stolen tasks plus owned tasks still partition the workload."""
        dq = TaskDeque(0)
        root = PairBlock.root(16)
        dq.push_children(root.split())
        stolen = dq.steal()
        remaining = []
        while (t := dq.pop()) is not None:
            remaining.append(t)
        total = stolen.count + sum(t.count for t in remaining)
        assert total == root.count

    def test_pending_pairs_tracks_block_counts(self):
        dq = TaskDeque(0)
        root = PairBlock.root(8)
        dq.push(root)
        assert dq.pending_pairs == root.count
        block = dq.pop()
        assert dq.pending_pairs == 0
        children = block.split()
        dq.push_children(children)
        assert dq.pending_pairs == root.count
        stolen = dq.steal()
        assert dq.pending_pairs == root.count - stolen.count

    def test_pending_pairs_counts_plain_tasks_as_one(self):
        dq = TaskDeque(0)
        dq.push("a")  # str.count is a method, not a size
        dq.push("b")
        assert dq.pending_pairs == 2
        dq.pop()
        assert dq.pending_pairs == 1

    def test_push_stealable_lands_at_steal_end(self):
        dq = TaskDeque(0)
        dq.push("own")
        dq.push_stealable("returned")
        assert dq.steal(StealOrder.LARGEST) == "returned"
        assert dq.pop() == "own"


class TestWorkerTopology:
    def test_from_gpus_per_node(self):
        topo = WorkerTopology.from_gpus_per_node([1, 2, 2])
        assert topo.n_workers == 5
        assert topo.n_nodes == 3
        assert topo.node_of == (0, 1, 1, 2, 2)

    def test_peers_and_remote(self):
        topo = WorkerTopology.from_gpus_per_node([2, 2])
        assert topo.peers_on_node(0) == [1]
        assert topo.remote_workers(0) == [2, 3]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WorkerTopology.from_gpus_per_node([])
        with pytest.raises(ValueError):
            WorkerTopology(())


class TestVictimSelector:
    def _selector(self, hierarchical=True):
        topo = WorkerTopology.from_gpus_per_node([2, 2, 2])
        return VictimSelector(topo, np.random.default_rng(42), hierarchical=hierarchical), topo

    def test_hierarchical_prefers_same_node(self):
        selector, topo = self._selector()
        for worker in range(topo.n_workers):
            order = list(selector.candidates(worker))
            local = set(topo.peers_on_node(worker))
            n_local = len(local)
            assert set(order[:n_local]) == local
            assert worker not in order
            assert len(order) == topo.n_workers - 1

    def test_uniform_covers_all_others(self):
        selector, topo = self._selector(hierarchical=False)
        order = list(selector.candidates(0))
        assert sorted(order) == [1, 2, 3, 4, 5]

    def test_is_remote(self):
        selector, _ = self._selector()
        assert not selector.is_remote(0, 1)
        assert selector.is_remote(0, 2)

    def test_unknown_worker_rejected(self):
        selector, _ = self._selector()
        with pytest.raises(ValueError):
            list(selector.candidates(99))

    def test_orders_vary_across_calls(self):
        """Random shuffling: remote order should not be constant."""
        selector, _ = self._selector()
        orders = {tuple(selector.candidates(0)) for _ in range(20)}
        assert len(orders) > 1

    def test_deterministic_under_fixed_seed(self):
        """The same seed must reproduce the exact candidate sequences."""

        def sequences(seed):
            topo = WorkerTopology.from_gpus_per_node([2, 2, 2])
            sel = VictimSelector(topo, np.random.default_rng(seed))
            return [tuple(sel.candidates(w)) for w in range(topo.n_workers) for _ in range(5)]

        assert sequences(7) == sequences(7)
        assert sequences(7) != sequences(8)


class TestSpeedPolicy:
    """The heterogeneity-aware victim ranking and steal sizing."""

    TOPO = WorkerTopology.from_gpus_per_node([2, 2])

    def _selector(self, speeds, work, hierarchical=True, seed=3):
        return VictimSelector(
            self.TOPO,
            np.random.default_rng(seed),
            hierarchical=hierarchical,
            policy=StealPolicy.SPEED,
            speeds=speeds,
            work_of=lambda w: float(work[w]),
        )

    def test_victims_ranked_by_remaining_time(self):
        # Worker 2 has less work than 3 but is 4x slower: it will take
        # longer to finish, so it must be probed first.
        sel = self._selector(
            speeds=(1.0, 1.0, 0.25, 1.0), work=[0, 0, 8, 16], hierarchical=False
        )
        order = list(sel.candidates(0))
        assert order[0] == 2  # 8 / 0.25 = 32 > 16 / 1.0
        assert order[1] == 3
        assert sel.remaining_time_estimate(2) == pytest.approx(32.0)

    def test_locality_tiers_preserved_under_hierarchical(self):
        # Remote worker 3 has far more backlog, but the same-node peer
        # still comes first: locality beats magnitude across tiers.
        sel = self._selector(speeds=(1.0, 1.0, 1.0, 1.0), work=[0, 1, 64, 64])
        for _ in range(10):
            order = list(sel.candidates(0))
            assert order[0] == 1
            assert set(order[1:]) == {2, 3}

    def test_ranking_is_deterministic_given_distinct_scores(self):
        sel = self._selector(speeds=(1.0, 1.0, 1.0, 1.0), work=[0, 0, 5, 9], hierarchical=False)
        orders = {tuple(sel.candidates(0)) for _ in range(10)}
        assert orders == {(3, 2, 1)}

    def test_uniform_policy_ignores_work_estimates(self):
        sel = VictimSelector(
            self.TOPO,
            np.random.default_rng(0),
            hierarchical=False,
            policy=StealPolicy.UNIFORM,
            speeds=(1.0, 1.0, 1.0, 0.01),
            work_of=lambda w: 1e9 if w == 3 else 0.0,
        )
        firsts = {next(iter(sel.candidates(0))) for _ in range(30)}
        assert len(firsts) > 1  # still randomized, not pinned to worker 3

    def test_split_depth_scales_with_speed_ratio(self):
        # Fast thieves keep whole (large) blocks; slow thieves split.
        assert steal_split_depth(1.0, 1.0) == 0
        assert steal_split_depth(1.0, 0.25) == 0  # fast thief, slow victim
        assert steal_split_depth(0.5, 1.0) == 1
        assert steal_split_depth(0.25, 1.0) == 2
        assert steal_split_depth(0.01, 1.0, max_depth=3) == 3  # capped
        with pytest.raises(ValueError):
            steal_split_depth(0.0, 1.0)

    def test_selector_split_depth_uses_policy(self):
        sel = self._selector(speeds=(1.0, 0.25, 1.0, 1.0), work=[0, 0, 0, 0])
        assert sel.split_depth(thief=1, victim=0) == 2
        assert sel.split_depth(thief=0, victim=1) == 0
        uniform = VictimSelector(
            self.TOPO, np.random.default_rng(0), speeds=(1.0, 0.25, 1.0, 1.0)
        )
        assert uniform.split_depth(thief=1, victim=0) == 0

    def test_speed_length_validated(self):
        with pytest.raises(ValueError, match="speeds"):
            VictimSelector(self.TOPO, np.random.default_rng(0), speeds=(1.0,))


class TestSimAdmission:
    def test_blocks_at_limit(self):
        env = Environment()
        adm = SimAdmission(env, limit=2)
        grants = []

        def submitter(tag):
            yield adm.acquire()
            grants.append((env.now, tag))
            yield env.timeout(5.0)
            adm.release()

        for tag in "abc":
            env.process(submitter(tag))
        env.run()
        assert grants == [(0.0, "a"), (0.0, "b"), (5.0, "c")]
        assert adm.peak_in_flight == 2
        assert adm.total_admitted == 3

    def test_release_without_acquire_rejected(self):
        env = Environment()
        adm = SimAdmission(env, limit=1)
        with pytest.raises(RuntimeError):
            adm.release()

    def test_invalid_limit(self):
        env = Environment()
        with pytest.raises(ValueError):
            SimAdmission(env, limit=0)


class TestThreadAdmission:
    def test_acquire_release_cycle(self):
        adm = ThreadAdmission(limit=2)
        assert adm.acquire()
        assert adm.acquire()
        assert adm.in_flight == 2
        assert not adm.acquire(timeout=0.01)  # full
        adm.release()
        assert adm.acquire(timeout=0.5)
        adm.release()
        adm.release()
        assert adm.in_flight == 0
        assert adm.peak_in_flight == 2

    def test_release_without_acquire_rejected(self):
        adm = ThreadAdmission(limit=1)
        with pytest.raises(RuntimeError):
            adm.release()

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            ThreadAdmission(0)
