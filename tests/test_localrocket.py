"""Integration tests for the threaded runtime and virtual devices."""

import threading
import time

import numpy as np
import pytest

from repro.cache.policy import EvictionPolicy
from repro.core.api import Application
from repro.core.buffers import DeviceBuffer
from repro.core.rocket import Rocket
from repro.data.filestore import InMemoryStore
from repro.runtime.devices import VirtualDevice
from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig


class TestVirtualDevice:
    def test_kernel_runs_and_wraps_result(self):
        with VirtualDevice("gpu0") as dev:
            buf = dev.h2d(np.arange(4.0))
            out = dev.run_kernel(np.sum, buf)
            assert isinstance(out, DeviceBuffer)
            assert out.data == pytest.approx(6.0)
            assert dev.kernel_count == 1
            assert dev.kernel_seconds >= 0.0

    def test_transfer_counters(self):
        with VirtualDevice("gpu0") as dev:
            arr = np.zeros(100, dtype=np.float64)
            buf = dev.h2d(arr)
            dev.d2h(buf)
            assert dev.h2d_bytes == 800
            assert dev.d2h_bytes == 800

    def test_h2d_copies(self):
        with VirtualDevice("gpu0") as dev:
            arr = np.zeros(4)
            buf = dev.h2d(arr)
            arr[0] = 99.0
            assert buf.data[0] == 0.0

    def test_foreign_buffer_rejected(self):
        with VirtualDevice("gpu0") as a, VirtualDevice("gpu1") as b:
            buf = a.h2d(np.zeros(2))
            with pytest.raises(RuntimeError, match="transfer is missing"):
                b.run_kernel(np.sum, buf)
            with pytest.raises(RuntimeError):
                b.d2h(buf)

    def test_speed_factor_pads_time(self):
        import time

        def busy(x):
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < 0.01:
                pass
            return x

        with VirtualDevice("slow", speed_factor=0.25) as slow:
            t0 = time.perf_counter()
            slow.run_kernel(busy, np.zeros(1))
            elapsed = time.perf_counter() - t0
        assert elapsed >= 0.035  # 10 ms padded ~4x

    def test_shutdown_rejects_new_kernels(self):
        dev = VirtualDevice("gpu0")
        dev.shutdown()
        with pytest.raises(RuntimeError):
            dev.run_kernel(np.sum, np.zeros(1))

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            VirtualDevice("g", speed_factor=0.0)


class SumApp(Application[str, float]):
    """Deterministic toy app: compare = sum(a) * sum(b).

    Every stage records invocation counts so tests can assert cache
    behaviour precisely.
    """

    def __init__(self):
        self.parse_calls = 0
        self.preprocess_calls = 0
        self._lock = threading.Lock()

    def file_name(self, key):
        return f"{key}.bin"

    def parse(self, key, file_contents):
        with self._lock:
            self.parse_calls += 1
        return np.frombuffer(file_contents, dtype=np.float64).copy()

    def preprocess(self, key, parsed):
        with self._lock:
            self.preprocess_calls += 1
        return parsed * 2.0

    def compare(self, key_a, a, key_b, b):
        return np.asarray(float(a.sum() * b.sum()))

    def postprocess(self, key_a, key_b, raw):
        return float(raw)


def make_store(n):
    store = InMemoryStore()
    values = {}
    for i in range(n):
        key = f"item{i:02d}"
        arr = np.full(8, float(i + 1))
        store.write(f"{key}.bin", arr.tobytes())
        values[key] = 2.0 * arr.sum()  # after preprocess
    return store, values


class TestLocalRocketRuntime:
    def test_results_match_direct_computation(self):
        n = 10
        store, values = make_store(n)
        app = SumApp()
        rocket = Rocket(app, store, RocketConfig(n_devices=2, device_cache_slots=4, host_cache_slots=6, seed=1))
        keys = sorted(values)
        results = rocket.run(keys)
        assert results.is_complete()
        for i, a in enumerate(keys):
            for b in keys[i + 1 :]:
                assert results.get(a, b) == pytest.approx(values[a] * values[b])

    def test_stats_populated(self):
        store, values = make_store(8)
        app = SumApp()
        rocket = Rocket(app, store, RocketConfig(n_devices=2, device_cache_slots=4, host_cache_slots=8, seed=2))
        rocket.run(sorted(values))
        stats = rocket.last_stats
        assert stats is not None
        assert stats.n_pairs == 28
        assert stats.loads >= 8
        assert stats.reuse_factor >= 1.0
        assert stats.io_bytes == stats.loads * 64
        assert sum(stats.pairs_per_device.values()) == 28
        assert "pairs" in stats.summary()

    def test_parse_called_once_per_load(self):
        store, values = make_store(6)
        app = SumApp()
        runtime = LocalRocketRuntime(app, store, RocketConfig(n_devices=1, device_cache_slots=6, host_cache_slots=6, seed=0))
        runtime.run(sorted(values))
        # Ample cache: each item loaded exactly once.
        assert app.parse_calls == 6
        assert app.preprocess_calls == 6
        assert runtime.last_stats.reuse_factor == pytest.approx(1.0)

    def test_tight_cache_forces_reloads(self):
        store, values = make_store(10)
        app = SumApp()
        runtime = LocalRocketRuntime(
            app, store, RocketConfig(n_devices=1, device_cache_slots=3, host_cache_slots=4, seed=0)
        )
        runtime.run(sorted(values))
        assert app.parse_calls > 10  # reloads happened
        assert runtime.last_stats.reuse_factor > 1.0

    def test_single_device_single_job(self):
        store, values = make_store(5)
        app = SumApp()
        runtime = LocalRocketRuntime(
            app,
            store,
            RocketConfig(n_devices=1, concurrent_jobs=1, device_cache_slots=3, host_cache_slots=5),
        )
        results = runtime.run(sorted(values))
        assert results.is_complete()

    def test_heterogeneous_speed_factors(self):
        store, values = make_store(8)
        app = SumApp()
        runtime = LocalRocketRuntime(
            app,
            store,
            RocketConfig(
                n_devices=2,
                device_speed_factors=(1.0, 0.25),
                device_cache_slots=8,
                host_cache_slots=8,
                seed=3,
            ),
        )
        results = runtime.run(sorted(values))
        assert results.is_complete()
        stats = runtime.last_stats
        assert sum(stats.pairs_per_device.values()) == 28

    def test_parse_error_propagates(self):
        store, values = make_store(4)
        store.write("item02.bin", b"short")  # corrupt: not a multiple of 8

        class BadApp(SumApp):
            def parse(self, key, file_contents):
                if len(file_contents) % 8:
                    raise ValueError(f"corrupt file for {key}")
                return super().parse(key, file_contents)

        runtime = LocalRocketRuntime(BadApp(), store, RocketConfig(n_devices=1, watchdog_seconds=30))
        with pytest.raises(ValueError, match="corrupt file"):
            runtime.run(sorted(values))

    def test_missing_file_propagates(self):
        store, values = make_store(3)
        app = SumApp()
        runtime = LocalRocketRuntime(app, store, RocketConfig(n_devices=1, watchdog_seconds=30))
        with pytest.raises(KeyError):
            runtime.run(sorted(values) + ["ghost"])

    def test_eviction_policy_configurable(self):
        store, values = make_store(8)
        app = SumApp()
        runtime = LocalRocketRuntime(
            app,
            store,
            RocketConfig(n_devices=1, device_cache_slots=3, host_cache_slots=4, eviction=EvictionPolicy.FIFO),
        )
        assert runtime.run(sorted(values)).is_complete()

    def test_profiling_trace(self):
        store, values = make_store(5)
        app = SumApp()
        runtime = LocalRocketRuntime(
            app, store, RocketConfig(n_devices=1, profiling=True, seed=0)
        )
        runtime.run(sorted(values))
        trace = runtime.last_stats.trace
        assert trace is not None
        assert "CPU" in trace.lanes()
        assert trace.busy_time("IO") >= 0.0

    def test_determinism_of_results(self):
        """Values (not timings) must be identical across runs."""
        store, values = make_store(7)
        keys = sorted(values)

        def collect():
            app = SumApp()
            runtime = LocalRocketRuntime(
                app, store, RocketConfig(n_devices=2, device_cache_slots=4, host_cache_slots=5, seed=5)
            )
            return [v for _, _, v in runtime.run(keys).items()]

        assert collect() == collect()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RocketConfig(n_devices=0)
        with pytest.raises(ValueError):
            RocketConfig(device_speed_factors=(1.0,), n_devices=2)
        with pytest.raises(ValueError):
            RocketConfig(device_speed_factors=(1.0, -1.0), n_devices=2)
        with pytest.raises(ValueError, match=r"in \(0, 1\]"):
            RocketConfig(device_speed_factors=(2.0, 1.0), n_devices=2)
        with pytest.raises(ValueError):
            RocketConfig(watchdog_seconds=0)


class DeviceFailApp(SumApp):
    """Comparison kernel that dies on one device of the pair.

    ``VirtualDevice`` kernel threads are named ``dev-<device>...``, so
    raising for a device-name substring injects a fault on exactly one
    of the node's GPUs while the other keeps working.
    """

    def __init__(self, poison_device="gpu1"):
        super().__init__()
        self.poison_device = poison_device

    def compare(self, key_a, a, key_b, b):
        time.sleep(0.005)  # keep both devices busy so jobs overlap
        if self.poison_device in threading.current_thread().name:
            raise RuntimeError(f"injected kernel fault on {self.poison_device}")
        return super().compare(key_a, a, key_b, b)


class TestPipelineFailurePath:
    """A kernel raising mid-job must release every token, pin and slot.

    Regression for the leaked first-item pin: a job whose *second*
    device-cache acquisition failed used to keep its first item pinned
    forever, wedging eviction for every surviving job and stalling
    shutdown.
    """

    #: Three device slots admit two concurrent jobs per device
    #: (safe_job_limit), so jobs regularly hold their first item while
    #: waiting on the second — the window the regression lives in.
    CFG = dict(
        n_devices=2,
        device_cache_slots=3,
        host_cache_slots=8,
        concurrent_jobs=4,
        leaf_size=2,
        seed=9,
        watchdog_seconds=30.0,
    )

    def _drain(self, condition, timeout=5.0):
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            if condition():
                return True
            time.sleep(0.01)
        return condition()

    def test_failing_kernel_releases_tokens_and_slots(self):
        from repro.runtime.pernode import NodePipeline
        from repro.scheduling.quadtree import PairBlock

        store, values = make_store(8)
        keys = sorted(values)
        pipeline = NodePipeline(
            DeviceFailApp(),
            store,
            RocketConfig(**self.CFG),
            keys,
            emit_result=lambda i, j, v: None,
            expected_pairs=28,
            initial_blocks=[PairBlock.root(len(keys))],
        )
        pipeline.start()
        try:
            assert pipeline.wait(20.0), "failed run must still signal done"
            assert pipeline.aborted.is_set()
            assert pipeline.errors
            assert any("injected kernel fault" in str(e) for e in pipeline.errors)
            pipeline.join(timeout=10.0)
            # Every admitted job must have given its token back and no
            # device/host slot may stay pinned, even for jobs aborted
            # between their first and second item acquisition.
            assert self._drain(
                lambda: all(st.admission.in_flight == 0 for st in pipeline.states)
            ), "leaked admission tokens"
            assert self._drain(
                lambda: all(st.cache.pinned_count() == 0 for st in pipeline.states)
            ), "leaked device-cache pins"
            assert self._drain(lambda: pipeline.host_cache.pinned_count() == 0)
        finally:
            t0 = time.perf_counter()
            pipeline.close()
            assert time.perf_counter() - t0 < 5.0, "close() hung after kernel fault"
        pipeline.close()  # idempotent

    def test_failing_kernel_surfaces_through_runtime(self):
        """End-to-end: the error propagates, the run does not hang."""
        store, values = make_store(8)
        runtime = LocalRocketRuntime(DeviceFailApp(), store, RocketConfig(**self.CFG))
        t0 = time.perf_counter()
        with pytest.raises(RuntimeError, match="injected kernel fault"):
            runtime.run(sorted(values))
        assert time.perf_counter() - t0 < self.CFG["watchdog_seconds"]

    def test_healthy_device_alone_completes(self):
        """Poisoning a device that does not exist must be harmless."""
        store, values = make_store(6)
        runtime = LocalRocketRuntime(
            DeviceFailApp(poison_device="gpu9"), store, RocketConfig(**self.CFG)
        )
        assert runtime.run(sorted(values)).is_complete()
