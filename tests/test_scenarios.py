"""Seeded randomized cross-runtime conformance scenarios.

The paper's claim is one engine, many platforms: the *same* all-pairs
result regardless of device count, speed mix, transport, scheduling
policy or pair filter.  This harness samples scenario tuples
``(n items, device count, speed mix, n_nodes, transport, steal policy,
pair filter, leaf size)`` from a seeded generator and, for every
sampled scenario, asserts

- the local threaded runtime reproduces a pure-Python reference
  evaluation of the application bit-for-bit,
- the multi-process cluster runtime produces a ``ResultMatrix``
  identical to the local one, and
- ``rocketsim`` executes the matching simulated scenario to
  completion with a conforming workload shape (all ``C(n, 2)`` pairs
  exactly once across its GPUs, reuse factor >= 1).

The sample is deterministic (fixed seed), so a failure always
reproduces; bumping ``SCENARIO_SEED`` re-rolls the whole suite.
"""

import numpy as np
import pytest

from repro.core.api import Application
from repro.core.workload import as_workload
from repro.data.filestore import InMemoryStore
from repro.runtime.cluster import ClusterConfig, ClusterRocketRuntime
from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig
from repro.scheduling.workstealing import StealPolicy
from repro.sim.cluster import ClusterSpec
from repro.sim.rocketsim import RocketSimConfig, run_simulation
from repro.sim.workload import FORENSICS, scaled_profile

SCENARIO_SEED = 0xC0FFEE
SCENARIO_COUNT = 6


class ScenarioApp(Application):
    """Deterministic toy app; compare mixes both operands asymmetrically."""

    def file_name(self, key):
        return f"{key}.bin"

    def parse(self, key, file_contents):
        return np.frombuffer(file_contents, dtype=np.float64).copy()

    def preprocess(self, key, parsed):
        return parsed * 3.0 + 1.0

    def compare(self, key_a, a, key_b, b):
        return np.asarray(float(a.sum() * 2.0 + b.sum()))

    def postprocess(self, key_a, key_b, raw):
        return float(raw)


def _idx(key):
    return int(key.rsplit("-", 1)[1])


def filter_none(a, b):
    return True


def filter_mod3(a, b):
    """Drop every third pair (module-level: inherited by forked workers)."""
    return (_idx(a) + _idx(b)) % 3 != 0


def filter_band(a, b):
    """Banded workload: only near-diagonal pairs survive."""
    return abs(_idx(a) - _idx(b)) <= 4


FILTERS = {"none": None, "mod3": filter_mod3, "band": filter_band}


def sample_scenarios(seed=SCENARIO_SEED, count=SCENARIO_COUNT):
    """Draw ``count`` scenario tuples from one seeded generator."""
    rng = np.random.default_rng(seed)
    scenarios = []
    for idx in range(count):
        n_devices = int(rng.integers(1, 4))
        speeds = tuple(float(rng.choice([1.0, 0.5, 0.25])) for _ in range(n_devices))
        scenarios.append(
            dict(
                idx=idx,
                n_items=int(rng.integers(6, 13)),
                n_devices=n_devices,
                speeds=speeds,
                policy=StealPolicy(str(rng.choice(["uniform", "speed"]))),
                n_nodes=int(rng.integers(1, 4)),
                transport=str(rng.choice(["queue", "shm"])),
                filter_name=str(rng.choice(sorted(FILTERS))),
                leaf_size=int(rng.integers(1, 4)),
                seed=int(rng.integers(0, 2**31)),
            )
        )
    return scenarios


def scenario_id(sc):
    mix = "x".join(f"{s:g}" for s in sc["speeds"])
    return (
        f"s{sc['idx']}-n{sc['n_items']}-d{sc['n_devices']}@{mix}-"
        f"{sc['policy'].value}-{sc['n_nodes']}nodes-{sc['transport']}-"
        f"{sc['filter_name']}-leaf{sc['leaf_size']}"
    )


SCENARIOS = sample_scenarios()


def make_store(n_items):
    store = InMemoryStore()
    keys = []
    for i in range(n_items):
        key = f"item-{i}"
        store.write(f"{key}.bin", (np.arange(6, dtype=np.float64) + i).tobytes())
        keys.append(key)
    return store, keys


def reference_results(app, store, keys, pair_filter):
    """Pure-Python ground truth: the pipeline stages applied in order."""
    items = {
        k: app.preprocess(k, app.parse(k, store.read(app.file_name(k)))) for k in keys
    }
    out = {}
    for i, a in enumerate(keys):
        for b in keys[i + 1:]:
            if pair_filter is not None and not pair_filter(a, b):
                continue
            out[(a, b)] = app.postprocess(a, b, np.asarray(app.compare(a, items[a], b, items[b])))
    return out


def rocket_config(sc, **overrides):
    cfg = dict(
        n_devices=sc["n_devices"],
        device_speed_factors=sc["speeds"],
        steal_policy=sc["policy"],
        leaf_size=sc["leaf_size"],
        device_cache_slots=8,
        host_cache_slots=16,
        seed=sc["seed"],
        watchdog_seconds=120.0,
    )
    cfg.update(overrides)
    return RocketConfig(**cfg)


@pytest.mark.parametrize("sc", SCENARIOS, ids=scenario_id)
def test_cross_runtime_result_parity(sc):
    """local == cluster == reference for every sampled scenario."""
    app = ScenarioApp()
    store, keys = make_store(sc["n_items"])
    pair_filter = FILTERS[sc["filter_name"]]
    expected = reference_results(app, store, keys, pair_filter)

    local = LocalRocketRuntime(app, store, rocket_config(sc))
    local_results = local.run(as_workload(keys, pair_filter))
    assert len(local_results) == len(expected)
    for (a, b), v in expected.items():
        assert local_results.get(a, b) == v
    stats = local.last_stats
    assert stats.aggregate_speed == pytest.approx(sum(sc["speeds"]))
    assert stats.calibration.cmp_count == len(expected)
    assert "model: predicted" in stats.summary()

    cluster = ClusterRocketRuntime(
        app,
        store,
        rocket_config(sc),
        cluster=ClusterConfig(
            n_nodes=sc["n_nodes"],
            transport=sc["transport"],
            fetch_timeout=20.0,
            steal_timeout=5.0,
        ),
    )
    cluster_results = cluster.run(as_workload(keys, pair_filter))
    assert len(cluster_results) == len(expected)
    for (a, b), v in expected.items():
        assert cluster_results.get(a, b) == v
    cstats = cluster.last_stats
    assert cstats.aggregate_speed == pytest.approx(sc["n_nodes"] * sum(sc["speeds"]))
    assert cstats.calibration.cmp_count == len(expected)
    assert "model: predicted" in cstats.summary()


@pytest.mark.parametrize("sc", SCENARIOS, ids=scenario_id)
def test_rocketsim_scenario_conformance(sc):
    """The simulator completes the matching platform's full workload.

    ``rocketsim`` runs on simulated time (no pair values, no filters),
    so conformance here means the workload shape: every one of the
    ``C(n, 2)`` pairs executed exactly once across the scenario's GPUs
    and the reuse factor within the model's bounds.
    """
    profile = scaled_profile(FORENSICS, sc["n_items"])
    spec = ClusterSpec.homogeneous(sc["n_nodes"], gpus_per_node=sc["n_devices"])
    report = run_simulation(
        spec,
        profile,
        RocketSimConfig(seed=sc["seed"], device_cache_slots=8, host_cache_slots=12),
        seed=sc["seed"],
    )
    n = sc["n_items"]
    assert report.n_pairs == n * (n - 1) // 2
    assert sum(report.pairs_per_gpu.values()) == report.n_pairs
    assert len(report.pairs_per_gpu) == sc["n_nodes"] * sc["n_devices"]
    assert report.reuse_factor >= 1.0
    assert report.runtime > 0
    assert 0 < report.efficiency <= 1.0 + 1e-9
