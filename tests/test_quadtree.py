"""Unit and property tests for the divide-and-conquer decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.quadtree import PairBlock, iter_pairs_morton


def brute_count(r0, r1, c0, c1):
    return sum(1 for i in range(r0, r1) for j in range(max(c0, i + 1), c1))


class TestCount:
    def test_root_count_is_n_choose_2(self):
        for n in (2, 3, 8, 17, 100):
            assert PairBlock.root(n).count == n * (n - 1) // 2

    @given(
        r0=st.integers(0, 20),
        dr=st.integers(0, 20),
        c0=st.integers(0, 20),
        dc=st.integers(0, 20),
    )
    @settings(max_examples=200, deadline=None)
    def test_closed_form_matches_brute_force(self, r0, dr, c0, dc):
        block = PairBlock(r0, r0 + dr, c0, c0 + dc)
        assert block.count == brute_count(r0, r0 + dr, c0, c0 + dc)

    def test_fully_below_diagonal_is_empty(self):
        assert PairBlock(5, 10, 0, 5).count == 0
        assert PairBlock(5, 10, 0, 5).is_empty

    def test_malformed_block_rejected(self):
        with pytest.raises(ValueError):
            PairBlock(5, 3, 0, 2)

    def test_root_needs_two_items(self):
        with pytest.raises(ValueError):
            PairBlock.root(1)


class TestSplit:
    @given(n=st.integers(2, 64))
    @settings(max_examples=50, deadline=None)
    def test_children_partition_parent(self, n):
        root = PairBlock.root(n)
        children = root.split()
        assert sum(c.count for c in children) == root.count
        # Children must be pairwise disjoint.
        seen = set()
        for child in children:
            pairs = set(child.pairs())
            assert not (pairs & seen)
            seen |= pairs
        assert len(seen) == root.count

    def test_empty_quadrants_dropped(self):
        root = PairBlock.root(8)
        for child in root.split():
            assert not child.is_empty

    def test_depth_increments(self):
        root = PairBlock.root(8)
        for child in root.split():
            assert child.depth == 1

    def test_single_cell_is_leaf(self):
        cell = PairBlock(0, 1, 1, 2)
        assert cell.count == 1
        assert cell.is_leaf()

    def test_leaf_size_threshold(self):
        root = PairBlock.root(6)  # 15 pairs
        assert not root.is_leaf(leaf_size=8)
        assert root.is_leaf(leaf_size=15)

    def test_invalid_leaf_size(self):
        with pytest.raises(ValueError):
            PairBlock.root(4).is_leaf(leaf_size=0)

    @given(n=st.integers(2, 40))
    @settings(max_examples=30, deadline=None)
    def test_recursive_split_terminates_at_single_pairs(self, n):
        stack = [PairBlock.root(n)]
        leaves = []
        while stack:
            block = stack.pop()
            if block.is_leaf(1):
                leaves.append(block)
            else:
                children = block.split()
                assert children, f"non-leaf {block} produced no children"
                assert all(c.count < block.count for c in children) or len(children) > 1
                stack.extend(children)
        assert sum(leaf.count for leaf in leaves) == n * (n - 1) // 2

    def test_items_lists_touched_indices(self):
        block = PairBlock(0, 2, 2, 4)
        assert block.items() == [0, 1, 2, 3]
        assert PairBlock(5, 10, 0, 5).items() == []


class TestPairsIteration:
    @given(n=st.integers(2, 30), leaf=st.integers(1, 9))
    @settings(max_examples=50, deadline=None)
    def test_morton_iteration_covers_all_pairs_once(self, n, leaf):
        pairs = list(iter_pairs_morton(n, leaf_size=leaf))
        assert len(pairs) == n * (n - 1) // 2
        assert len(set(pairs)) == len(pairs)
        assert all(i < j for i, j in pairs)

    def test_morton_order_has_locality(self):
        """Consecutive Morton pairs reuse items far more than row-major."""
        n = 32

        def reuse(sequence):
            shared = 0
            prev = None
            for pair in sequence:
                if prev is not None and set(pair) & set(prev):
                    shared += 1
                prev = pair
            return shared

        morton = list(iter_pairs_morton(n))
        row_major = [(i, j) for i in range(n) for j in range(i + 1, n)]
        # Row-major also shares the row item consecutively, but Morton
        # must be at least comparable while additionally keeping column
        # working sets small; check Morton's unique-item working set.
        window = 64
        def working_set(sequence):
            total = 0
            for start in range(0, len(sequence) - window, window):
                items = set()
                for pair in sequence[start : start + window]:
                    items.update(pair)
                total += len(items)
            return total

        assert working_set(morton) < working_set(row_major)
        assert reuse(morton) > 0


class TestRepr:
    def test_repr_mentions_ranges(self):
        text = repr(PairBlock.root(4))
        assert "rows=[0,4)" in text and "count=6" in text


class TestPartition:
    """Speed-proportional partitioning of the workload tree."""

    def _flatten_pairs(self, shares):
        out = []
        for share in shares:
            for block in share:
                out.extend(block.pairs())
        return out

    def test_shares_partition_the_workload_exactly(self):
        from repro.scheduling.quadtree import partition_pairs

        n = 20
        shares = partition_pairs(n, (1.0, 0.5, 0.25))
        pairs = self._flatten_pairs(shares)
        expected = [(i, j) for i in range(n) for j in range(i + 1, n)]
        assert sorted(pairs) == expected  # disjoint and complete

    def test_shares_are_speed_proportional(self):
        from repro.scheduling.quadtree import partition_pairs

        n = 40
        weights = (1.0, 0.25)
        shares = partition_pairs(n, weights)
        total = n * (n - 1) // 2
        counts = [sum(b.count for b in share) for share in shares]
        assert sum(counts) == total
        for count, w in zip(counts, weights):
            target = total * w / sum(weights)
            # LPT against weighted targets: within one refined block.
            assert abs(count - target) <= max(b.count for s in shares for b in s)
        assert counts[0] > counts[1]  # the fast device gets more work

    def test_single_weight_gets_everything(self):
        from repro.scheduling.quadtree import partition_pairs

        shares = partition_pairs(10, (0.5,))
        assert sum(b.count for b in shares[0]) == 45

    def test_equal_weights_near_even(self):
        from repro.scheduling.quadtree import partition_pairs

        shares = partition_pairs(24, (1.0, 1.0, 1.0, 1.0))
        counts = [sum(b.count for b in share) for share in shares]
        assert sum(counts) == 276
        assert max(counts) - min(counts) <= max(counts) // 2

    def test_deterministic(self):
        from repro.scheduling.quadtree import partition_pairs

        a = partition_pairs(18, (1.0, 0.5))
        b = partition_pairs(18, (1.0, 0.5))
        assert a == b

    def test_empty_blocks_and_errors(self):
        from repro.scheduling.quadtree import partition_blocks

        assert partition_blocks([], (1.0, 1.0)) == [[], []]
        with pytest.raises(ValueError):
            partition_blocks([], ())
        with pytest.raises(ValueError):
            partition_blocks([], (1.0, 0.0))
        with pytest.raises(ValueError):
            partition_blocks([], (1.0,), granularity=0)

    def test_more_weights_than_pairs(self):
        from repro.scheduling.quadtree import partition_pairs

        # 2 items = 1 pair over 3 workers: one share holds it, rest empty.
        shares = partition_pairs(2, (1.0, 1.0, 1.0))
        counts = [sum(b.count for b in share) for share in shares]
        assert sorted(counts) == [0, 0, 1]
