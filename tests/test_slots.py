"""Unit and property tests for the slot caches (device/host levels)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policy import EvictionPolicy
from repro.cache.slots import Slot, SlotCache, SlotState


def fill_published(cache: SlotCache, keys):
    """Reserve and immediately publish each key."""
    for key in keys:
        slot = cache.reserve(key)
        assert slot is not None, f"no slot for {key}"
        cache.publish(slot)


class TestBasicFlow:
    def test_miss_then_reserve_then_publish_then_hit(self):
        cache = SlotCache(2)
        assert cache.lookup("a") is None
        slot = cache.reserve("a")
        assert slot is not None
        assert slot.state is SlotState.WRITE
        cache.publish(slot, payload="data")
        hit = cache.lookup("a")
        assert hit is slot
        assert hit.state is SlotState.READ
        assert hit.payload == "data"

    def test_lookup_counts_outcomes(self):
        cache = SlotCache(2)
        cache.lookup("a")  # miss
        slot = cache.reserve("a")
        cache.lookup("a")  # hit while writing
        cache.publish(slot)
        cache.lookup("a")  # hit
        c = cache.counters
        assert (c.misses, c.hits_while_writing, c.hits) == (1, 1, 1)
        assert c.requests == 3
        assert 0.0 < c.hit_ratio() < 1.0

    def test_peek_does_not_count(self):
        cache = SlotCache(2)
        cache.peek("a")
        assert cache.counters.requests == 0

    def test_reserve_resident_key_rejected(self):
        cache = SlotCache(2)
        slot = cache.reserve("a")
        cache.publish(slot)
        with pytest.raises(ValueError):
            cache.reserve("a")

    def test_publish_twice_rejected(self):
        cache = SlotCache(2)
        slot = cache.reserve("a")
        cache.publish(slot)
        with pytest.raises(ValueError):
            cache.publish(slot)

    def test_abandon_frees_slot(self):
        cache = SlotCache(1)
        slot = cache.reserve("a")
        cache.abandon(slot)
        assert "a" not in cache
        assert cache.reserve("b") is not None

    def test_capacity_bytes(self):
        cache = SlotCache(4, slot_size=100.0)
        assert cache.capacity_bytes == 400.0


class TestPinning:
    def test_pin_blocks_eviction(self):
        cache = SlotCache(1)
        slot = cache.reserve("a")
        cache.publish(slot)
        cache.pin(slot)
        assert cache.reserve("b") is None  # nothing evictable
        cache.unpin(slot)
        assert cache.reserve("b") is not None

    def test_pin_write_slot_rejected(self):
        cache = SlotCache(1)
        slot = cache.reserve("a")
        with pytest.raises(ValueError):
            cache.pin(slot)

    def test_unpin_without_pin_rejected(self):
        cache = SlotCache(1)
        slot = cache.reserve("a")
        cache.publish(slot)
        with pytest.raises(ValueError):
            cache.unpin(slot)

    def test_initial_readers_handoff(self):
        cache = SlotCache(1)
        slot = cache.reserve("a")
        cache.publish(slot, initial_readers=3)
        assert slot.readers == 3
        assert slot.pinned

    def test_pinned_count(self):
        cache = SlotCache(3)
        fill_published(cache, ["a", "b"])
        cache.pin(cache.lookup("a"))
        assert cache.pinned_count() == 1

    def test_write_slot_counts_as_pinned(self):
        cache = SlotCache(2)
        cache.reserve("a")
        assert cache.pinned_count() == 1


class TestEviction:
    def test_lru_evicts_least_recently_used(self):
        cache = SlotCache(2, policy=EvictionPolicy.LRU)
        fill_published(cache, ["a", "b"])
        # Touch "a" so "b" becomes the LRU victim.
        slot_a = cache.lookup("a")
        cache.pin(slot_a)
        cache.unpin(slot_a)
        cache.publish(cache.reserve("c"))
        assert "a" in cache
        assert "b" not in cache
        assert cache.counters.evictions == 1

    def test_fifo_ignores_recency(self):
        cache = SlotCache(2, policy=EvictionPolicy.FIFO)
        fill_published(cache, ["a", "b"])
        slot_a = cache.lookup("a")
        cache.pin(slot_a)
        cache.unpin(slot_a)
        cache.publish(cache.reserve("c"))
        # FIFO evicts the oldest insertion ("a") despite the recent touch.
        assert "a" not in cache
        assert "b" in cache

    def test_random_eviction_skips_pinned(self):
        cache = SlotCache(3, policy=EvictionPolicy.RANDOM, rng=np.random.default_rng(0))
        fill_published(cache, ["a", "b", "c"])
        for key in ("a", "b"):
            cache.pin(cache.lookup(key))
        cache.publish(cache.reserve("d"))
        assert "c" not in cache
        assert "a" in cache and "b" in cache

    def test_eviction_skips_pinned_lru(self):
        cache = SlotCache(2)
        fill_published(cache, ["old", "new"])
        cache.pin(cache.lookup("old"))  # oldest is pinned
        cache.publish(cache.reserve("x"))
        assert "new" not in cache  # second-oldest evicted instead
        assert "old" in cache

    def test_all_pinned_returns_none(self):
        cache = SlotCache(2)
        fill_published(cache, ["a", "b"])
        for key in ("a", "b"):
            cache.pin(cache.lookup(key))
        assert cache.reserve("c") is None

    def test_invalidate(self):
        cache = SlotCache(2)
        fill_published(cache, ["a"])
        assert cache.invalidate("a")
        assert "a" not in cache
        assert not cache.invalidate("missing")

    def test_invalidate_pinned_refused(self):
        cache = SlotCache(2)
        fill_published(cache, ["a"])
        cache.pin(cache.lookup("a"))
        assert not cache.invalidate("a")

    def test_needs_at_least_one_slot(self):
        with pytest.raises(ValueError):
            SlotCache(0)


class TestPropertyBased:
    @given(
        n_slots=st.integers(min_value=1, max_value=8),
        ops=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, n_slots, ops):
        """Reference-model check: residency bounded, states consistent."""
        cache = SlotCache(n_slots)
        for key in ops:
            slot = cache.lookup(key)
            if slot is None:
                wslot = cache.reserve(key)
                if wslot is not None:
                    cache.publish(wslot)
            assert len(cache) <= n_slots
            for resident in cache.keys():
                s = cache.peek(resident)
                assert s is not None and s.key == resident

    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["get", "pin", "unpin"]), st.integers(0, 5)),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_reader_counts_never_negative(self, ops):
        cache = SlotCache(3)
        pins = {}
        for op, key in ops:
            slot = cache.peek(key)
            if op == "get" and slot is None:
                wslot = cache.reserve(key)
                if wslot is not None:
                    cache.publish(wslot)
            elif op == "pin" and slot is not None and slot.state is SlotState.READ:
                cache.pin(slot)
                pins[key] = pins.get(key, 0) + 1
            elif op == "unpin" and pins.get(key, 0) > 0:
                slot = cache.peek(key)
                assert slot is not None  # pinned slots cannot be evicted
                cache.unpin(slot)
                pins[key] -= 1
            for k, count in pins.items():
                s = cache.peek(k)
                if count > 0:
                    assert s is not None
                    assert s.readers >= count or s.readers >= 1

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_lru_matches_reference_model(self, data):
        """LRU eviction order must match a simple ordered-dict model."""
        n_slots = data.draw(st.integers(min_value=1, max_value=5))
        cache = SlotCache(n_slots, policy=EvictionPolicy.LRU)
        reference = {}  # key -> recency counter
        tick = 0
        for _ in range(data.draw(st.integers(min_value=1, max_value=100))):
            key = data.draw(st.integers(min_value=0, max_value=9))
            tick += 1
            slot = cache.lookup(key, count=False)
            if slot is not None and slot.state is SlotState.READ:
                cache.pin(slot)
                cache.unpin(slot)
                reference[key] = tick
            elif slot is None:
                wslot = cache.reserve(key)
                assert wslot is not None  # nothing is ever pinned here
                cache.publish(wslot)
                if len(reference) >= n_slots and key not in reference:
                    victim = min(reference, key=reference.get)
                    del reference[victim]
                reference[key] = tick
            assert set(cache.keys()) == set(reference)
