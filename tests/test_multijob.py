"""Tests for the concurrent multi-job scheduler (sessions as a service).

Five layers:

- :class:`~repro.core.scheduler.JobScheduler` unit tests: admission
  ordering, weighted virtual-time hand-out, in-flight windows, and the
  queued-cancel hook;
- workload grain decomposition (:meth:`Workload.grain_blocks`);
- :class:`RunHandle` state-machine transitions
  (QUEUED→RUNNING→{DONE,CANCELLED,FAILED}) and ``wait(timeout=)``;
- concurrency behaviour on the local backend: interleaved progress of
  two co-scheduled jobs, result parity with serial execution, cancel
  isolation (job A's cancellation never disturbs co-running job B, and
  releases exactly A's cache pins), priority-ordered admission, and
  per-job ``max_inflight`` enforcement;
- the same interleaving + parity acceptance on the multi-process
  cluster backend, plus the ``pair_filter=`` deprecation shim.
"""

import threading
import time

import pytest

from repro.core.rocket import Rocket
from repro.core.scheduler import JobAccounting, JobScheduler, SchedulingPolicy, coerce_policy
from repro.core.session import RunHandle, RunState
from repro.core.workload import AllPairs, Bipartite, FilteredPairs
from repro.runtime.cluster import ClusterConfig, ClusterRocketRuntime
from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig

from tests.test_cluster_runtime import SumApp, make_store


CFG = dict(
    n_devices=1,
    device_cache_slots=32,
    host_cache_slots=64,
    leaf_size=2,
    seed=11,
    watchdog_seconds=120.0,
)


class SlowApp(SumApp):
    """Compare costs a few milliseconds: co-scheduling is observable."""

    def compare(self, key_a, a, key_b, b):
        time.sleep(0.004)
        return super().compare(key_a, a, key_b, b)


def make_backend(name, store, app=None, cluster_overrides=None, **cfg_overrides):
    cfg = RocketConfig(**dict(CFG, **cfg_overrides))
    app = app if app is not None else SumApp()
    if name == "local":
        return LocalRocketRuntime(app, store, cfg)
    cluster_cfg = dict(n_nodes=2, fetch_timeout=20.0, steal_timeout=5.0)
    cluster_cfg.update(cluster_overrides or {})
    return ClusterRocketRuntime(app, store, cfg, cluster=ClusterConfig(**cluster_cfg))


# ----------------------------------------------------------------------
# Scheduler unit tests


class TestJobScheduler:
    KEYS = [f"k{i}" for i in range(10)]

    def handle(self, n=6, priority=1.0, max_inflight=None):
        return RunHandle(
            AllPairs(self.KEYS[:n]), priority=priority, max_inflight=max_inflight
        )

    def test_fifo_admits_one_job_in_submission_order(self):
        sched = JobScheduler(SchedulingPolicy.FIFO)
        low = self.handle(priority=0.5)
        high = self.handle(priority=9.0)
        sched.submit(low)
        sched.submit(high)
        assert sched.admit() == [low]  # submission order, priority ignored
        assert sched.admit() == []  # max_active=1
        sched.finish(low)
        assert sched.admit() == [high]

    def test_fair_admits_by_priority(self):
        sched = JobScheduler(SchedulingPolicy.FAIR, max_active=2)
        a = self.handle(priority=1.0)
        b = self.handle(priority=4.0)
        c = self.handle(priority=2.0)
        for h in (a, b, c):
            sched.submit(h)
        assert sched.admit() == [b, c]  # two slots, highest weight first
        sched.finish(b)
        assert sched.admit() == [a]

    def test_fair_handout_tracks_weights(self):
        """Granted pairs over a window approximate the 3:1 weight ratio."""
        sched = JobScheduler(SchedulingPolicy.FAIR, max_active=2, grain_pairs=4,
                             window_pairs=10_000)
        heavy = self.handle(n=10, priority=3.0)
        light = self.handle(n=10, priority=1.0)
        sched.submit(heavy)
        sched.submit(light)
        sched.admit()
        for h in (heavy, light):
            sched.load_blocks(h)
        granted = {id(heavy): 0, id(light): 0}
        for _ in range(12):
            grant = sched.next_grant()
            assert grant is not None
            handle, _block, count = grant
            granted[id(handle)] += count
        assert granted[id(heavy)] > 2 * granted[id(light)]

    def test_window_blocks_grants_until_completions(self):
        sched = JobScheduler(SchedulingPolicy.FAIR, grain_pairs=4, window_pairs=4)
        h = self.handle(n=10)
        sched.submit(h)
        sched.admit()
        sched.load_blocks(h)
        granted = 0
        while True:
            grant = sched.next_grant()
            if grant is None:
                break
            granted += grant[2]
        # The window bounds in-flight pairs; nothing further until
        # completions open it again.
        assert 0 < granted <= 4
        assert sched.next_grant() is None
        sched.on_completed(h, granted)
        assert sched.next_grant() is not None

    def test_max_inflight_overrides_window(self):
        sched = JobScheduler(SchedulingPolicy.FAIR, grain_pairs=2, window_pairs=1000)
        h = self.handle(n=10, max_inflight=2)
        sched.submit(h)
        sched.admit()
        sched.load_blocks(h)
        granted = 0
        while True:
            grant = sched.next_grant()
            if grant is None:
                break
            granted += grant[2]
        assert 0 < granted <= 2  # the per-job cap, not the 1000 window

    def test_queued_cancel_resolves_immediately(self):
        sched = JobScheduler(SchedulingPolicy.FIFO)
        blocker = self.handle()
        queued = self.handle()
        sched.submit(blocker)
        sched.submit(queued)
        sched.admit()
        assert queued.cancel()
        # Synchronous: terminal before any backend involvement.
        assert queued.state is RunState.CANCELLED
        assert queued.accounting.finished_at is not None
        assert sched.admit() == []  # the cancelled job is gone
        sched.finish(blocker)
        assert sched.idle and sched.queued_count == 0

    def test_accounting_lifecycle(self):
        sched = JobScheduler(SchedulingPolicy.FAIR)
        h = self.handle(n=4)
        acct = sched.submit(h)
        assert isinstance(acct, JobAccounting) and h.accounting is acct
        assert acct.pairs_total == 6 and acct.started_at is None
        sched.admit()
        assert acct.started_at is not None
        sched.mark_fully_granted(h)
        assert acct.pairs_granted == 6
        sched.finish(h)
        assert acct.finished_at is not None
        assert "pairs" in acct.summary()

    def test_fifo_rejects_concurrent_max_active(self):
        # FIFO *is* the serial contract; concurrency needs FAIR.
        with pytest.raises(ValueError, match="serial"):
            JobScheduler(SchedulingPolicy.FIFO, max_active=2)

    def test_admit_resolves_cancel_that_raced_the_hook(self):
        """A cancel flag raised before the job is admittable must keep
        the job away from the backend: admit() resolves it CANCELLED."""
        sched = JobScheduler(SchedulingPolicy.FAIR)
        h = self.handle()
        sched.submit(h)
        h._cancel_requested = True  # simulate the lost-hook race window
        assert sched.admit() == []
        assert h.state is RunState.CANCELLED

    def test_coerce_policy(self):
        assert coerce_policy("fair") is SchedulingPolicy.FAIR
        assert coerce_policy(SchedulingPolicy.FIFO) is SchedulingPolicy.FIFO
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            coerce_policy("nope")


class TestGrainBlocks:
    KEYS = [f"k{i}" for i in range(12)]

    def test_covers_every_pair_exactly_once(self):
        w = AllPairs(self.KEYS)
        quanta = w.grain_blocks(8)
        assert all(count <= 8 or block.is_leaf() for block, count in quanta)
        pairs = [p for block, _ in quanta for p in block.pairs()]
        assert len(pairs) == len(set(pairs)) == w.n_pairs

    def test_filtered_counts_and_drops_empty_quanta(self):
        w = FilteredPairs(self.KEYS, lambda a, b: a == "k0")
        quanta = w.grain_blocks(4)
        assert sum(c for _, c in quanta) == w.n_pairs
        assert all(c > 0 for _, c in quanta)

    def test_bipartite_rectangle(self):
        w = Bipartite(self.KEYS[:3], self.KEYS[3:])
        quanta = w.grain_blocks(6)
        assert sum(c for _, c in quanta) == 27

    def test_grain_sweep_seeds_counts_and_memoizes(self):
        """One predicate sweep serves the decomposition AND n_pairs;
        repeat calls hit the memo instead of re-sweeping."""
        calls = {"n": 0}

        def flt(a, b):
            calls["n"] += 1
            return a != "k0"

        w = FilteredPairs(self.KEYS, flt)
        quanta = w.grain_blocks(4)
        swept = calls["n"]
        assert swept == 66  # C(12, 2): every pair exactly once
        assert w.n_pairs == sum(c for _, c in quanta)  # seeded, no re-sweep
        assert w.grain_blocks(4) == quanta  # memoized
        assert calls["n"] == swept


# ----------------------------------------------------------------------
# RunHandle state machine


class TestRunHandleStates:
    def test_queued_running_done(self):
        store, keys = make_store(6)
        session = make_backend("local", store).open_session()
        try:
            handle = session.submit(AllPairs(keys))
            assert handle.state in (RunState.QUEUED, RunState.RUNNING, RunState.DONE)
            assert handle.wait(timeout=30.0)
            assert handle.state is RunState.DONE
            assert handle.done()
        finally:
            session.close()

    def test_pending_is_a_queued_alias(self):
        # Migration shim: the pre-scheduler name keeps working.
        assert RunState.PENDING is RunState.QUEUED

    def test_wait_times_out_then_succeeds(self):
        store, keys = make_store(8)
        runtime = make_backend("local", store, app=SlowApp())
        session = runtime.open_session()
        try:
            handle = session.submit(AllPairs(keys))
            assert handle.wait(timeout=0.001) is False  # still running
            assert handle.wait(timeout=60.0) is True
            assert handle.state is RunState.DONE
        finally:
            session.close()

    def test_running_to_failed(self):
        class BadApp(SumApp):
            def parse(self, key, file_contents):
                raise ValueError("boom")

        store, keys = make_store(4)
        session = make_backend("local", store, app=BadApp()).open_session()
        try:
            handle = session.submit(AllPairs(keys))
            assert handle.wait(timeout=30.0)
            assert handle.state is RunState.FAILED
            with pytest.raises(ValueError, match="boom"):
                handle.result()
        finally:
            session.close()

    def test_running_to_cancelled(self):
        store, keys = make_store(8)
        session = make_backend("local", store, app=SlowApp()).open_session()
        try:
            handle = session.submit(AllPairs(keys))
            deadline = time.perf_counter() + 10.0
            while handle.state is RunState.QUEUED and time.perf_counter() < deadline:
                time.sleep(0.002)
            assert handle.cancel()
            assert handle.wait(timeout=30.0)
            assert handle.state is RunState.CANCELLED
        finally:
            session.close()

    def test_priority_validation(self):
        store, keys = make_store(4)
        with pytest.raises(ValueError, match="priority"):
            RunHandle(AllPairs(keys), priority=0.0)
        with pytest.raises(ValueError, match="max_inflight"):
            RunHandle(AllPairs(keys), max_inflight=0)

    @pytest.mark.parametrize("backend", ["local", "cluster"])
    def test_cancel_queued_never_touches_backend(self, backend):
        """Satellite regression: a QUEUED job's cancel resolves inside
        the ``cancel()`` call itself, without the backend session ever
        receiving the job."""
        store, keys = make_store(8)
        session = make_backend(backend, store, app=SlowApp()).open_session()
        try:
            blocker = session.submit(AllPairs(keys))
            queued = session.submit(AllPairs(keys))
            assert queued.state is RunState.QUEUED
            assert queued.cancel()
            # Immediate: CANCELLED the moment cancel() returns — no
            # waiting for the dispatcher, no backend involvement.
            assert queued.state is RunState.CANCELLED
            assert queued.progress()[0] == 0
            assert queued.accounting.started_at is None  # never admitted
            with pytest.raises(RuntimeError, match="cancelled"):
                queued.result()
            assert blocker.result(timeout=90.0).is_complete()
        finally:
            session.close()


# ----------------------------------------------------------------------
# Concurrent execution (acceptance)


def _assert_parity(results, store, keys):
    ref = LocalRocketRuntime(SumApp(), store, RocketConfig(**CFG)).run(keys)
    got = dict(((a, b), v) for a, b, v in results.items())
    for a, b, v in results.items():
        assert ref.get(a, b) == pytest.approx(v)
    assert len(got) == len(list(results.items()))


class TestConcurrentJobs:
    @pytest.mark.parametrize("backend", ["local", "cluster"])
    def test_two_jobs_make_interleaved_progress(self, backend):
        """Acceptance: both jobs report progress() > 0 before either
        completes, on the local and the cluster backend."""

        class SlowerApp(SumApp):
            # Slow enough that both jobs' in-flight windows overlap for
            # many coordinator poll ticks.
            def compare(self, key_a, a, key_b, b):
                time.sleep(0.008)
                return super().compare(key_a, a, key_b, b)

        store, keys = make_store(12)
        # Small result batches + a fast flush tick keep the
        # coordinator's progress view fine-grained on the cluster
        # backend (a 64-pair batch would hide the interleaving).
        runtime = make_backend(
            backend, store, app=SlowerApp(),
            cluster_overrides=dict(result_batch=4, poll_interval=0.01),
        )
        session = runtime.open_session(policy="fair")
        try:
            big = session.submit(AllPairs(keys))
            small = session.submit(AllPairs(keys[:7]), priority=4.0)
            interleaved = False
            deadline = time.perf_counter() + 90.0
            while not (big.done() and small.done()):
                if time.perf_counter() > deadline:
                    pytest.fail("concurrent jobs did not finish in time")
                if (
                    big.progress()[0] > 0
                    and small.progress()[0] > 0
                    and not big.done()
                    and not small.done()
                ):
                    interleaved = True
                time.sleep(0.002)
            assert interleaved, "jobs never ran concurrently"
            big_res = big.result()
            small_res = small.result()
            assert big_res.is_complete() and small_res.is_complete()
            _assert_parity(big_res, store, keys)
            _assert_parity(small_res, store, keys[:7])
        finally:
            session.close()

    @pytest.mark.parametrize("backend", ["local", "cluster"])
    def test_concurrent_results_equal_serial(self, backend):
        """Result parity: two co-scheduled jobs produce exactly what two
        serial runs produce."""
        store, keys = make_store(10)
        runtime = make_backend(backend, store)
        session = runtime.open_session(policy="fair")
        try:
            first = session.submit(AllPairs(keys))
            second = session.submit(Bipartite(keys[:4], keys[4:]), priority=2.0)
            first_res = first.result(timeout=90.0)
            second_res = second.result(timeout=90.0)
        finally:
            session.close()
        assert first_res.is_complete() and second_res.is_complete()
        serial = make_backend(backend, store)
        serial_session = serial.open_session()
        try:
            ref_first = serial_session.submit(AllPairs(keys)).result(timeout=90.0)
            ref_second = serial_session.submit(
                Bipartite(keys[:4], keys[4:])
            ).result(timeout=90.0)
        finally:
            serial_session.close()
        for a, b, v in ref_first.items():
            assert first_res.get(a, b) == pytest.approx(v)
        for a, b, v in ref_second.items():
            assert second_res.get(a, b) == pytest.approx(v)

    def test_cancel_one_job_leaves_the_other_running(self):
        """Cancel isolation: aborting job A never evicts or unpins job
        B's state; B completes with full results and A's pins drain."""
        store, keys = make_store(12)
        runtime = make_backend("local", store, app=SlowApp())
        session = runtime.open_session(policy="fair")
        try:
            doomed = session.submit(AllPairs(keys))
            survivor = session.submit(AllPairs(keys[6:]), priority=2.0)
            deadline = time.perf_counter() + 30.0
            while doomed.progress()[0] == 0 and time.perf_counter() < deadline:
                time.sleep(0.002)
            assert doomed.cancel()
            result = survivor.result(timeout=90.0)
            assert result.is_complete()
            assert doomed.wait(timeout=30.0)
            assert doomed.state is RunState.CANCELLED
            # Every pin of the cancelled job was handed back: nothing is
            # pinned once both jobs are terminal (B finished, A aborted).
            engine = session._engine
            deadline = time.perf_counter() + 10.0
            while time.perf_counter() < deadline:
                if all(st.cache.pinned_count() == 0 for st in engine.states):
                    break
                time.sleep(0.01)
            assert all(st.cache.pinned_count() == 0 for st in engine.states)
            assert engine.host_cache.pinned_count() == 0
            _assert_parity(result, store, keys[6:])
        finally:
            session.close()

    def test_fair_priority_orders_admission(self):
        """With one active slot, queued jobs start in priority order."""
        store, keys = make_store(6)
        runtime = make_backend("local", store, app=SlowApp())
        session = runtime.open_session(policy="fair", max_active=1)
        try:
            order = []
            blocker = session.submit(AllPairs(keys))
            low = session.submit(AllPairs(keys[:4]), priority=1.0)
            high = session.submit(AllPairs(keys[2:]), priority=8.0)
            for name, handle in (("low", low), ("high", high)):
                threading.Thread(
                    target=lambda n=name, h=handle: (h.wait(60.0), order.append(n)),
                    daemon=True,
                ).start()
            assert blocker.result(timeout=60.0).is_complete()
            assert high.wait(timeout=60.0) and low.wait(timeout=60.0)
            time.sleep(0.05)
            assert order == ["high", "low"]
        finally:
            session.close()

    @pytest.mark.parametrize("n_devices", [1, 2])
    def test_max_inflight_caps_engine_pressure(self, n_devices):
        """A job submitted with max_inflight=1 never has more than one
        pair in flight on the engine — including with several device
        workers racing the window check (the reservation is atomic with
        the check, so two workers cannot both see an open window)."""

        class GaugeApp(SumApp):
            # True concurrency gauge: compare runs on the device kernel
            # threads, so overlapping kernels == overlapping in-flight
            # pairs.  The sleep widens any race into a reliable overlap.
            lock = threading.Lock()
            current = 0
            peak = 0

            def compare(self, key_a, a, key_b, b):
                cls = type(self)
                with cls.lock:
                    cls.current += 1
                    cls.peak = max(cls.peak, cls.current)
                time.sleep(0.002)
                out = super().compare(key_a, a, key_b, b)
                with cls.lock:
                    cls.current -= 1
                return out

        store, keys = make_store(8)
        runtime = make_backend("local", store, app=GaugeApp(), n_devices=n_devices)
        session = runtime.open_session(policy="fair")
        try:
            handle = session.submit(AllPairs(keys), max_inflight=1)
            assert handle.result(timeout=60.0).is_complete()
            assert GaugeApp.peak <= 1
            assert max(
                st.admission.peak_in_flight for st in session._engine.states
            ) <= 1
        finally:
            session.close()

    def test_fifo_sessions_ignore_priority_and_stay_serial(self):
        """Migration guarantee: the default policy behaves exactly like
        the pre-scheduler serial dispatcher."""
        store, keys = make_store(8)
        session = make_backend("local", store).open_session()
        try:
            first = session.submit(AllPairs(keys), priority=1.0)
            second = session.submit(AllPairs(keys), priority=100.0)
            assert first.result(timeout=60.0).is_complete()
            # FIFO: the high-priority job still ran second.
            assert second.accounting.started_at >= first.accounting.started_at
            assert second.result(timeout=60.0).is_complete()
        finally:
            session.close()


# ----------------------------------------------------------------------
# Deprecation shim


class TestPairFilterDeprecation:
    def test_rocket_run_pair_filter_warns(self):
        store, keys = make_store(6)
        rocket = Rocket(SumApp(), store, RocketConfig(**CFG))
        with pytest.warns(DeprecationWarning, match="FilteredPairs"):
            results = rocket.run(keys, pair_filter=lambda a, b: a == keys[0])
        assert len(list(results.items())) == 5

    def test_workload_path_does_not_warn(self):
        import warnings

        store, keys = make_store(6)
        rocket = Rocket(SumApp(), store, RocketConfig(**CFG))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            results = rocket.run(FilteredPairs(keys, lambda a, b: a == keys[0]))
        assert len(list(results.items())) == 5
