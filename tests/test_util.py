"""Unit and property tests for repro.util (rng, histogram, rolling, trace, stats, tables)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.histogram import Histogram, ascii_histogram
from repro.util.rng import RngFactory, seeded_rng, spawn_seeds
from repro.util.rolling import RollingAverage, ThroughputSeries
from repro.util.stats import OnlineStats, lognormal_params, summarize
from repro.util.tables import format_table
from repro.util.trace import TraceEvent, TraceRecorder, ascii_timeline, lane_summary


class TestRng:
    def test_seeded_rng_reproducible(self):
        assert seeded_rng(7).integers(0, 1000) == seeded_rng(7).integers(0, 1000)

    def test_none_maps_to_default_seed(self):
        assert seeded_rng(None).integers(0, 10**9) == seeded_rng(None).integers(0, 10**9)

    def test_spawn_seeds_distinct(self):
        seeds = spawn_seeds(1, 16)
        assert len(set(seeds)) == 16

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_factory_streams_stable_and_independent(self):
        f1, f2 = RngFactory(5), RngFactory(5)
        a1 = f1.get("alpha").integers(0, 10**9)
        _ = f2.get("beta").integers(0, 10**9)  # consuming beta first...
        a2 = f2.get("alpha").integers(0, 10**9)
        assert a1 == a2  # ...must not perturb alpha

    def test_factory_different_names_differ(self):
        f = RngFactory(5)
        xs = f.get("a").integers(0, 10**9, 20)
        ys = f.get("b").integers(0, 10**9, 20)
        assert not np.array_equal(xs, ys)

    def test_child_factory_independent(self):
        f = RngFactory(5)
        child = f.child("sub")
        assert child.seed != f.seed

    def test_choice_and_shuffle(self):
        f = RngFactory(1)
        items = list(range(10))
        assert f.choice(items, "pick") in items
        shuffled = f.shuffle_copy(items, "mix")
        assert sorted(shuffled) == items
        with pytest.raises(ValueError):
            f.choice([], "empty")


class TestHistogram:
    def test_from_samples_counts_everything(self):
        h = Histogram.from_samples([1.0, 2.0, 2.5, 3.0], bins=4)
        assert h.total == 4

    def test_clamping_tracked(self):
        h = Histogram(lo=0.0, hi=1.0, bins=10)
        h.add(-5.0)
        h.add(5.0)
        assert h.n_clamped_low == 1
        assert h.n_clamped_high == 1
        assert h.total == 2

    def test_add_many_matches_add(self):
        xs = np.linspace(0, 1, 101)
        h1 = Histogram(0.0, 1.0, 7)
        h2 = Histogram(0.0, 1.0, 7)
        for x in xs:
            h1.add(float(x))
        h2.add_many(xs)
        assert np.array_equal(h1.counts, h2.counts)

    def test_quantile_monotone(self):
        rng = seeded_rng(0)
        h = Histogram.from_samples(rng.normal(10, 2, 5000), bins=50)
        assert h.quantile(0.1) <= h.quantile(0.5) <= h.quantile(0.9)

    def test_cv_distinguishes_regular_from_irregular(self):
        """The Fig. 7 signal: lognormal tail has much higher CV than a tight normal."""
        rng = seeded_rng(1)
        regular = Histogram.from_samples(rng.normal(1.0, 0.01, 4000), bins=60)
        irregular = Histogram.from_samples(rng.lognormal(0.0, 1.0, 4000), bins=60)
        assert regular.coefficient_of_variation() < 0.1
        assert irregular.coefficient_of_variation() > 0.5

    def test_empty_quantile_rejected(self):
        h = Histogram(0, 1, 4)
        with pytest.raises(ValueError):
            h.quantile(0.5)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 1.0, 4)

    def test_ascii_render(self):
        h = Histogram.from_samples([1, 1, 2, 3], bins=3)
        text = ascii_histogram(h)
        assert "#" in text
        assert text.count("\n") == 2


class TestRolling:
    def test_rolling_average_evicts_old(self):
        r = RollingAverage(window=10.0)
        r.add(0.0, 100.0)
        r.add(5.0, 50.0)
        assert r.mean() == pytest.approx(75.0)
        r.add(11.0, 10.0)  # t=0 sample leaves the window
        assert r.mean() == pytest.approx(30.0)

    def test_time_ordering_enforced(self):
        r = RollingAverage(window=1.0)
        r.add(5.0, 1.0)
        with pytest.raises(ValueError):
            r.add(4.0, 1.0)

    def test_throughput_rate(self):
        ts = ThroughputSeries(window=10.0)
        for t in np.arange(0, 10, 0.5):  # 2 events/s
            ts.record(float(t))
        # Window is half-open (t - w, t]: the event exactly at t=0 falls out.
        assert ts.rate_at(10.0) == pytest.approx(1.9)
        assert ts.rate_at(9.9) == pytest.approx(2.0)

    def test_series_grid(self):
        ts = ThroughputSeries(window=2.0)
        for t in (0.5, 1.0, 1.5):
            ts.record(t)
        grid, rates = ts.series(step=0.5)
        assert len(grid) == len(rates)
        assert rates.max() > 0

    def test_empty_series(self):
        ts = ThroughputSeries()
        grid, rates = ts.series()
        assert grid.size == 0 and rates.size == 0
        assert ts.overall_rate() == 0.0


class TestTrace:
    def test_busy_time_per_lane(self):
        rec = TraceRecorder()
        rec.record("GPU", "compare", 0.0, 2.0)
        rec.record("GPU", "preprocess", 3.0, 4.0)
        rec.record("CPU", "parse", 0.0, 1.0)
        assert rec.busy_time("GPU") == pytest.approx(3.0)
        assert rec.busy_by_label("GPU") == {"compare": 2.0, "preprocess": 1.0}
        assert rec.makespan() == 4.0
        assert rec.lanes() == ["CPU", "GPU"]

    def test_disabled_recorder_swallows(self):
        rec = TraceRecorder(enabled=False)
        rec.record("GPU", "x", 0, 1)
        assert rec.events == []

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent("GPU", "x", 2.0, 1.0)

    def test_lane_summary_utilisation(self):
        rec = TraceRecorder()
        rec.record("GPU", "c", 0.0, 5.0)
        rec.record("IO", "io", 0.0, 1.0)
        summary = lane_summary(rec)
        assert summary["GPU"]["utilization"] == pytest.approx(1.0)
        assert summary["IO"]["utilization"] == pytest.approx(0.2)

    def test_ascii_timeline_renders_lanes(self):
        rec = TraceRecorder()
        rec.record("GPU", "compare", 0.0, 1.0)
        text = ascii_timeline(rec, width=20)
        assert "GPU" in text and "C" in text

    def test_empty_timeline(self):
        assert "empty" in ascii_timeline(TraceRecorder())

    def test_clear(self):
        rec = TraceRecorder()
        rec.record("a", "b", 0, 1)
        rec.clear()
        assert rec.events == []


class TestOnlineStats:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_matches_numpy(self, xs):
        acc = OnlineStats()
        acc.add_many(xs)
        assert acc.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
        assert acc.std == pytest.approx(np.std(xs, ddof=1), rel=1e-6, abs=1e-6)
        assert acc.min == min(xs)
        assert acc.max == max(xs)

    @given(
        st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
        st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_concatenation(self, xs, ys):
        a, b, c = OnlineStats(), OnlineStats(), OnlineStats()
        a.add_many(xs)
        b.add_many(ys)
        c.add_many(xs + ys)
        merged = a.merge(b)
        assert merged.count == c.count
        assert merged.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-9)
        assert merged.variance == pytest.approx(c.variance, rel=1e-6, abs=1e-6)

    def test_empty(self):
        acc = OnlineStats()
        assert acc.mean == 0.0
        assert acc.variance == 0.0

    def test_summarize_keys(self):
        out = summarize([1.0, 2.0, 3.0])
        assert out["n"] == 3
        assert out["p50"] == 2.0
        assert summarize([])["n"] == 0


class TestLognormal:
    @given(mean=st.floats(0.01, 100), cv=st.one_of(st.just(0.0), st.floats(1e-6, 3.0)))
    @settings(max_examples=60, deadline=None)
    def test_moments_roundtrip(self, mean, cv):
        # cv below ~1e-8 underflows log1p((std/mean)^2) to sigma = 0,
        # a float-precision limit rather than a defect, so the strategy
        # draws either exactly 0 or a representable cv.
        std = mean * cv
        mu, sigma = lognormal_params(mean, std)
        got_mean = math.exp(mu + sigma**2 / 2)
        # expm1 keeps the reconstruction accurate for tiny sigma^2.
        got_var = math.expm1(sigma**2) * math.exp(2 * mu + sigma**2)
        assert got_mean == pytest.approx(mean, rel=1e-9)
        assert math.sqrt(got_var) == pytest.approx(std, rel=1e-6, abs=1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            lognormal_params(0.0, 1.0)
        with pytest.raises(ValueError):
            lognormal_params(1.0, -1.0)


class TestTables:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["alpha", 1.5], ["b", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert "alpha" in lines[4]

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456789e-8], [123456.789]])
        assert "e-08" in text
        assert "e+05" in text or "123456" in text

    def test_bool_rendering(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text
