"""Batched compare_block parity with the per-pair path.

Three layers:

- kernel-level parity: for each application, ``compare_block`` over a
  block of pairs returns what per-pair ``compare`` returns —
  bit-identical for microscopy (per-pair seeds are preserved inside the
  batch), within the documented floating-point-summation tolerance for
  the einsum/Gram reductions of the other two;
- runtime parity on the local backend: a batched application and a
  wrapper that hides ``compare_block`` (forcing the per-pair dispatch
  path) produce equal result matrices for every workload shape, the
  batched path drains cleanly through a mid-run ``cancel()``, and an
  application without ``compare_block`` still runs the per-pair path;
- cluster-backend parity (marked ``slow``): the batched application on
  real worker processes matches the per-pair local reference for every
  workload shape.
"""

import math
import time
import zlib

import numpy as np
import pytest

from repro.apps import (
    BioinformaticsApplication,
    ForensicsApplication,
    MicroscopyApplication,
)
from repro.core.api import Application
from repro.core.workload import AllPairs, Bipartite, DeltaPairs, FilteredPairs
from repro.data.filestore import InMemoryStore
from repro.data.synthetic import (
    make_bioinformatics_dataset,
    make_forensics_dataset,
    make_microscopy_dataset,
)
from repro.runtime.cluster import ClusterConfig, ClusterRocketRuntime
from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig

CFG = dict(
    n_devices=1,
    device_cache_slots=8,
    host_cache_slots=16,
    leaf_size=2,
    seed=7,
    watchdog_seconds=120.0,
)

#: Documented tolerance of the vectorised einsum/Gram kernels versus
#: per-pair evaluation (floating-point summation order only).
REL_TOL = 1e-9
ABS_TOL = 1e-12


class PerPairForensics(ForensicsApplication):
    """Forensics app with the batched fast path hidden.

    Restoring the base-class methods flips ``supports_compare_block``
    off, so the runtime takes the per-pair dispatch path — the
    reference for every parity assertion below.
    """

    compare_block = Application.compare_block
    item_view = Application.item_view


def crc_filter(a, b):
    """Deterministic, module-level (picklable) pair predicate."""
    return zlib.crc32(f"{a}|{b}".encode()) % 2 == 0


def forensics_store(n_images=10, seed=11):
    store = InMemoryStore()
    ds = make_forensics_dataset(store, n_images=n_images, image_shape=(32, 32), seed=seed)
    return store, ds.keys


def workload_shapes(keys):
    return [
        AllPairs(keys),
        FilteredPairs(keys, crc_filter),
        Bipartite(keys[:4], keys[4:]),
        DeltaPairs(keys[:7], keys[7:]),
    ]


def as_dict(matrix):
    return {(a, b): v for a, b, v in matrix.items()}


def assert_matrices_match(got, ref):
    assert got.keys() == ref.keys()
    for pair, v in ref.items():
        assert math.isclose(got[pair], v, rel_tol=REL_TOL, abs_tol=ABS_TOL), pair


# ----------------------------------------------------------------------
# Kernel-level parity


def load_items(app, store, keys):
    return {
        key: app.preprocess(key, app.parse(key, store.read(app.file_name(key))))
        for key in keys
    }


def block_vs_pairs(app, items, keys, *, use_views):
    pairs = [(a, b) for i, a in enumerate(keys) for b in keys[i + 1 :]]
    views = (
        {k: app.item_view(k, items[k]) for k in keys} if use_views else items
    )
    keys_a = [a for a, _ in pairs]
    keys_b = [b for _, b in pairs]
    block = app.compare_block(
        keys_a, [views[a] for a in keys_a], keys_b, [views[b] for b in keys_b]
    )
    ref = [
        app.postprocess(a, b, app.compare(a, items[a], b, items[b]))
        for a, b in pairs
    ]
    got = [app.postprocess(a, b, block[k]) for k, (a, b) in enumerate(pairs)]
    return np.asarray(ref, dtype=np.float64), np.asarray(got, dtype=np.float64)


class TestKernelParity:
    def test_bioinformatics_block_matches_per_pair(self):
        store = InMemoryStore()
        ds = make_bioinformatics_dataset(
            store, n_species=8, n_proteins=3, protein_length=200, seed=3
        )
        app = BioinformaticsApplication(k=3)
        assert app.supports_compare_block and app.supports_item_view
        ref, got = block_vs_pairs(app, load_items(app, store, ds.keys), ds.keys, use_views=True)
        np.testing.assert_allclose(got, ref, rtol=REL_TOL, atol=ABS_TOL)

    def test_forensics_block_matches_per_pair(self):
        store, keys = forensics_store()
        app = ForensicsApplication()
        assert app.supports_compare_block and not app.supports_item_view
        ref, got = block_vs_pairs(app, load_items(app, store, keys), keys, use_views=False)
        np.testing.assert_allclose(got, ref, rtol=REL_TOL, atol=ABS_TOL)

    def test_microscopy_block_bit_identical(self):
        store = InMemoryStore()
        ds = make_microscopy_dataset(store, n_particles=6, template_points=16, seed=5)
        app = MicroscopyApplication(sigma=0.06, restarts=1)
        assert app.supports_compare_block
        ref, got = block_vs_pairs(app, load_items(app, store, ds.keys), ds.keys, use_views=False)
        # Per-pair crc32 seeds are derived inside the batch, so the
        # data-dependent optimiser walks identical trajectories.
        np.testing.assert_array_equal(got, ref)

    def test_ncc_pairs_deduplicates_by_identity(self):
        from repro.apps.forensics.prnu import ncc, ncc_pairs

        rng = np.random.default_rng(0)
        items = [rng.standard_normal((16, 16)) for _ in range(5)]
        pairs = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        shared = ncc_pairs([items[i] for i, _ in pairs], [items[j] for _, j in pairs])
        # Distinct array objects (no dedup possible) give the same answer.
        copies = ncc_pairs(
            [items[i].copy() for i, _ in pairs], [items[j].copy() for _, j in pairs]
        )
        ref = np.array([ncc(items[i], items[j]) for i, j in pairs])
        np.testing.assert_allclose(shared, ref, rtol=REL_TOL, atol=ABS_TOL)
        np.testing.assert_allclose(copies, ref, rtol=REL_TOL, atol=ABS_TOL)

    def test_ncc_pairs_length_mismatch_rejected(self):
        from repro.apps.forensics.prnu import ncc_pairs

        with pytest.raises(ValueError, match="length mismatch"):
            ncc_pairs([np.zeros((2, 2))], [])

    def test_default_compare_block_loops_compare(self):
        app = PerPairForensics()
        assert not app.supports_compare_block and not app.supports_item_view
        store, keys = forensics_store(n_images=4)
        items = load_items(app, store, keys)
        ref, got = block_vs_pairs(app, items, keys, use_views=False)
        np.testing.assert_array_equal(got, ref)  # it *is* the per-pair loop


# ----------------------------------------------------------------------
# Runtime parity, local backend


class TestLocalRuntimeParity:
    def test_every_workload_shape_matches_per_pair(self):
        store, keys = forensics_store()
        for workload in workload_shapes(keys):
            ref = LocalRocketRuntime(
                PerPairForensics(), store, RocketConfig(**CFG)
            ).run(workload)
            got = LocalRocketRuntime(
                ForensicsApplication(), store, RocketConfig(**CFG)
            ).run(workload)
            assert got.is_complete()
            assert_matrices_match(as_dict(got), as_dict(ref))

    def test_app_without_compare_block_runs_per_pair_path(self):
        store, keys = forensics_store(n_images=6)
        runtime = LocalRocketRuntime(PerPairForensics(), store, RocketConfig(**CFG))
        matrix = runtime.run(AllPairs(keys))
        assert matrix.is_complete()
        assert runtime.last_stats.n_pairs == 15

    def test_cancel_mid_batch_drains_cleanly(self):
        class SlowBatchedForensics(ForensicsApplication):
            def compare_block(self, keys_a, items_a, keys_b, items_b):
                time.sleep(0.01)
                return super().compare_block(keys_a, items_a, keys_b, items_b)

        store, keys = forensics_store()
        session = LocalRocketRuntime(
            SlowBatchedForensics(), store, RocketConfig(**CFG)
        ).open_session()
        try:
            handle = session.submit(AllPairs(keys))
            streamed = []
            for item in handle.stream():
                streamed.append(item)
                if len(streamed) >= 3:
                    assert handle.cancel()
                    break
            with pytest.raises(RuntimeError, match="cancelled"):
                handle.result(timeout=30.0)
            # The partial block stopped emitting at the abort and every
            # batch claim was returned: no leaked admission tokens or
            # pinned slots on the shared engine.
            engine = session._engine
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                if all(st.admission.in_flight == 0 for st in engine.states):
                    break
                time.sleep(0.01)
            assert all(st.admission.in_flight == 0 for st in engine.states)
            assert all(st.cache.pinned_count() == 0 for st in engine.states)
            assert engine.host_cache.pinned_count() == 0
            # Partial results are a subset of the true matrix...
            ref = as_dict(
                LocalRocketRuntime(
                    ForensicsApplication(), store, RocketConfig(**CFG)
                ).run(AllPairs(keys))
            )
            for a, b, v in streamed:
                assert math.isclose(v, ref[(a, b)], rel_tol=REL_TOL, abs_tol=ABS_TOL)
            # ...and the session keeps working after the cancel.
            again = session.submit(AllPairs(keys[:6]))
            assert again.result(timeout=60.0).is_complete()
        finally:
            session.close()


# ----------------------------------------------------------------------
# Runtime parity, cluster backend (real processes)


@pytest.mark.slow
class TestClusterRuntimeParity:
    def test_every_workload_shape_matches_per_pair(self):
        store, keys = forensics_store()
        references = {
            w.describe(): as_dict(
                LocalRocketRuntime(PerPairForensics(), store, RocketConfig(**CFG)).run(w)
            )
            for w in workload_shapes(keys)
        }
        session = ClusterRocketRuntime(
            ForensicsApplication(), store, RocketConfig(**CFG),
            cluster=ClusterConfig(n_nodes=2, fetch_timeout=20.0, steal_timeout=5.0),
        ).open_session()
        try:
            for workload in workload_shapes(keys):
                matrix = session.submit(workload).result(timeout=120.0)
                assert matrix.is_complete()
                assert_matrices_match(as_dict(matrix), references[workload.describe()])
        finally:
            session.close()
