"""Cluster-runtime scaling — real processes, not simulation.

Unlike the ``bench_fig*`` experiments (discrete-event simulation of the
paper's platforms), this benchmark exercises the *real* multi-process
runtime: a forensics all-pairs workload on synthetic PRNU data executed
on 1-4 worker processes with the distributed cache live, reporting
pairs/s per node count and the hop-outcome distribution of the
distributed-cache protocol (the real-runtime analogue of Fig. 11).

Absolute scaling is bounded by the host's core count — the point of
the experiment is that the cross-process mechanisms (mediator fetches,
payload shipping, global steals) work and their costs are visible.

Run:  python -m pytest benchmarks/bench_cluster_runtime.py -q -s
"""

import numpy as np
import pytest

from repro.apps import ForensicsApplication
from repro.data.filestore import InMemoryStore
from repro.data.synthetic import make_forensics_dataset
from repro.runtime.cluster import ClusterConfig, ClusterRocketRuntime
from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig
from repro.util.tables import format_table

from _common import print_block, write_bench_json

N_IMAGES = 12
CONFIG = dict(
    n_devices=1,
    device_cache_slots=8,
    host_cache_slots=16,
    leaf_size=2,
    seed=7,
    watchdog_seconds=300.0,
)


def make_workload():
    store = InMemoryStore()
    dataset = make_forensics_dataset(store, n_images=N_IMAGES, image_shape=(64, 64), seed=7)
    return ForensicsApplication(), store, dataset.keys


def test_cluster_scaling_pairs_per_second(once):
    """Throughput and wire traffic for 1-4 real worker processes."""
    app, store, keys = make_workload()

    local = LocalRocketRuntime(app, store, RocketConfig(**CONFIG))
    baseline = local.run(keys)

    rows = [[
        "local (threads)", 1,
        f"{local.last_stats.throughput:8.1f}", local.last_stats.loads, "-", "-", "-",
    ]]
    runs = {}

    def run_all():
        for n_nodes in (1, 2, 3, 4):
            runtime = ClusterRocketRuntime(
                app, store, RocketConfig(**CONFIG),
                cluster=ClusterConfig(n_nodes=n_nodes, fetch_timeout=30.0, steal_timeout=5.0),
            )
            runs[n_nodes] = (runtime.run(keys), runtime.last_stats)

    once(run_all)

    for n_nodes, (results, stats) in sorted(runs.items()):
        # Cross-backend determinism: the cluster results must be
        # bit-identical to the threaded baseline.
        for a, b, v in baseline.items():
            assert results.get(a, b) == v
        rows.append([
            "cluster (processes)", n_nodes,
            f"{stats.throughput:8.1f}", stats.loads,
            f"{stats.hop_stats.total_hits}/{stats.hop_stats.requests}",
            f"{stats.bytes_over_wire / 1e6:.2f} MB",
            stats.remote_steals,
        ])

    print_block(
        "Cluster runtime scaling (real processes)",
        format_table(
            ["backend", "nodes", "pairs/s", "loads", "remote hits", "over wire", "steals"],
            rows,
            title=f"forensics, {N_IMAGES} items, {baseline.n_pairs} pairs",
        ),
    )

    write_bench_json(
        "cluster_runtime",
        {
            "local_pairs_per_second": local.last_stats.throughput,
            "cluster": {
                str(n_nodes): {
                    "pairs_per_second": stats.throughput,
                    "loads": stats.loads,
                    "remote_hits": stats.hop_stats.total_hits,
                    "remote_requests": stats.hop_stats.requests,
                    "bytes_over_wire": stats.bytes_over_wire,
                    "remote_steals": stats.remote_steals,
                }
                for n_nodes, (_, stats) in sorted(runs.items())
            },
        },
    )

    multi = runs[4][1]
    assert multi.hop_stats.requests > 0
    assert multi.hop_stats.total_hits >= 1  # payloads really crossed processes


def test_cluster_hop_distribution(once):
    """Hop-outcome histogram of the live protocol (Fig. 11 analogue)."""
    app, store, keys = make_workload()
    runtime = ClusterRocketRuntime(
        app, store, RocketConfig(**CONFIG),
        cluster=ClusterConfig(n_nodes=4, max_hops=3, fetch_timeout=30.0, steal_timeout=5.0),
    )
    once(runtime.run, keys)
    stats = runtime.last_stats
    pct = stats.hop_stats.percentages()
    print_block(
        "Distributed-cache outcomes (4 nodes, h=3, real transport)",
        format_table(
            ["outcome", "percent of requests"],
            [[k, f"{v:.1f}%"] for k, v in pct.items()],
            title=f"{stats.hop_stats.requests} requests, "
            f"{stats.bytes_over_wire / 1e6:.2f} MB shipped, {stats.messages} messages",
        ),
    )
    assert stats.hop_stats.requests > 0
    assert abs(sum(pct.values()) - 100.0) < 1e-6
