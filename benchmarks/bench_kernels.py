"""Batched-pair kernels vs the per-pair path — all three applications.

PR 7's tentpole claim: dispatching a *block* of pairs into one
vectorised ``compare_block`` call beats one Python-dispatched
``compare`` per pair.  This benchmark measures exactly that, at the
kernel level (no runtime around it, so the numbers isolate kernel
dispatch + vectorisation):

- *per-pair*: ``app.compare`` once per pair on the cached payloads —
  for the bioinformatics app this includes the historical per-compare
  CV unpacking, which is precisely the work the batched path hoists
  out of the pair loop;
- *batched*: one ``app.item_view`` per item (as the runtime computes
  it, once per resident cache slot) plus one ``app.compare_block``
  over all pairs.

The composition-vector app must clear a 3x floor — its per-pair kernel
re-unpacks both sparse CVs and walks a Python merge loop, while the
batch pre-unpacks once and reduces over a dense scatter.  Forensics
vectorises over a stacked ``(n, H, W)`` axis; microscopy's registration
is data-dependent (per-pair optimiser restarts) so its batch only
amortises dispatch — both are reported without a floor.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -q -s
"""

import time

import numpy as np

from repro.apps import BioinformaticsApplication, ForensicsApplication, MicroscopyApplication
from repro.data.filestore import InMemoryStore
from repro.data.synthetic import (
    make_bioinformatics_dataset,
    make_forensics_dataset,
    make_microscopy_dataset,
)
from repro.util.tables import format_table

from _common import print_block, write_bench_json

#: Acceptance floor: batched CV distance >= 3x the per-pair kernel.
CV_SPEEDUP_FLOOR = 3.0


def _load_items(app, store, keys):
    """Parse + preprocess every item, exactly like the load pipeline."""
    items = {}
    for key in keys:
        parsed = app.parse(key, store.read(app.file_name(key)))
        items[key] = app.preprocess(key, parsed)
    return items


def _bench_app(app, store, keys, repeats=3):
    """Best-of-``repeats`` seconds for the per-pair and batched paths."""
    items = _load_items(app, store, keys)
    pairs = [(a, b) for i, a in enumerate(keys) for b in keys[i + 1 :]]

    def per_pair():
        return [
            app.postprocess(a, b, app.compare(a, items[a], b, items[b]))
            for a, b in pairs
        ]

    def batched():
        views = (
            {k: app.item_view(k, items[k]) for k in keys}
            if app.supports_item_view
            else items
        )
        keys_a = [a for a, _ in pairs]
        keys_b = [b for _, b in pairs]
        raw = app.compare_block(
            keys_a, [views[a] for a in keys_a], keys_b, [views[b] for b in keys_b]
        )
        return [app.postprocess(a, b, raw[k]) for k, (a, b) in enumerate(pairs)]

    def best(fn):
        result, elapsed = None, float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            elapsed = min(elapsed, time.perf_counter() - t0)
        return result, elapsed

    ref, t_pair = best(per_pair)
    out, t_batch = best(batched)
    # Parity: batched values match the per-pair kernel (bit-identical
    # for microscopy; FP-summation-order tolerance for the dense/einsum
    # reductions of the other two).
    assert np.allclose(ref, out, atol=1e-9), f"{type(app).__name__} parity broke"
    return len(pairs), t_pair, t_batch


def test_batched_kernels_beat_per_pair(once):
    """Kernel-level speedup of compare_block over per-pair compare."""
    plans = {}

    store = InMemoryStore()
    ds = make_bioinformatics_dataset(
        store, n_species=24, n_proteins=6, protein_length=500, mutation_rate=0.05, seed=3
    )
    plans["bioinformatics"] = (BioinformaticsApplication(k=3), store, ds.keys)

    store = InMemoryStore()
    ds = make_forensics_dataset(store, n_images=14, n_cameras=4, image_shape=(64, 64), seed=5)
    plans["forensics"] = (ForensicsApplication(), store, ds.keys)

    store = InMemoryStore()
    ds = make_microscopy_dataset(
        store, n_particles=8, template_points=24, jitter=0.02, seed=9
    )
    plans["microscopy"] = (MicroscopyApplication(sigma=0.06, restarts=2), store, ds.keys)

    measured = {}

    def run_all():
        for name, (app, app_store, keys) in plans.items():
            measured[name] = _bench_app(app, app_store, keys)

    once(run_all)

    rows, results = [], {}
    for name, (n_pairs, t_pair, t_batch) in measured.items():
        speedup = t_pair / t_batch if t_batch > 0 else float("inf")
        rows.append([
            name, n_pairs,
            f"{1e6 * t_pair / n_pairs:9.1f}",
            f"{1e6 * t_batch / n_pairs:9.1f}",
            f"{speedup:6.2f}x",
        ])
        results[name] = {
            "n_pairs": n_pairs,
            "per_pair_us": 1e6 * t_pair / n_pairs,
            "batched_us": 1e6 * t_batch / n_pairs,
            "speedup": speedup,
        }

    print_block(
        "Batched compare_block vs per-pair compare (kernel level)",
        format_table(
            ["app", "pairs", "per-pair µs", "batched µs", "speedup"],
            rows,
            title=f"best of 3; CV floor {CV_SPEEDUP_FLOOR:.0f}x",
        ),
    )
    write_bench_json("kernels", results)

    assert results["bioinformatics"]["speedup"] >= CV_SPEEDUP_FLOOR, (
        f"CV batched kernel speedup "
        f"{results['bioinformatics']['speedup']:.2f}x under the "
        f"{CV_SPEEDUP_FLOOR:.0f}x floor"
    )
    # The regular stacked-ndarray app must at least not regress.
    assert results["forensics"]["speedup"] >= 1.0
