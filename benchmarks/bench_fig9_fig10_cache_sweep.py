"""Fig. 9 (efficiency and R vs cache size) and Fig. 10 (threads vs cache).

Fig. 9: on one node, sweep the local cache size from far below the
device limit to the full host cache.  Paper shapes: microscopy is flat
(its data always fits); forensics and bioinformatics degrade gracefully
as the cache shrinks while R grows roughly inversely with cache size;
even at a few percent of the data set the system keeps a substantial
fraction of its peak efficiency.

Fig. 10: per-thread busy times of the forensics run for three host
cache sizes.  Paper shape: shrinking the cache inflates T_CPU, T_GPU
and T_IO together (more reloads), with the run time following the GPU.
"""

import pytest

from repro.util.tables import format_table

from _common import SCALED_APPS, print_block, run_scaled


PAPER_HOST_CACHE_BYTES = 40e9  # the DAS-5 node's 40 GB host cache


@pytest.mark.parametrize("name", ["forensics", "bioinformatics", "microscopy"])
def test_fig9_cache_size_sweep(once, name):
    app = SCALED_APPS[name]
    n = app.profile.n_items
    # Sweep fractions of the 40 GB byte budget, as in the paper's Fig. 9
    # x-axis.  Slot counts follow from the (scaled) slot size, capped at
    # the item count — for microscopy even the smallest budget holds the
    # whole data set, which is exactly why its curve is flat.
    fractions = (0.08, 0.15, 0.3, 0.6, 1.0)
    scale = n / {"forensics": 4980, "bioinformatics": 2500, "microscopy": 256}[name]
    budget_slots = PAPER_HOST_CACHE_BYTES * scale / app.profile.slot_size

    def sweep():
        out = []
        for frac in fractions:
            slots = min(n, max(2, int(round(frac * budget_slots))))
            dev = min(slots, max(2, app.device_slots))
            host = max(dev, slots)
            rep = run_scaled(app, n_nodes=1, device_cache_slots=dev, host_cache_slots=host)
            out.append((frac, slots, rep.efficiency, rep.reuse_factor))
        return out

    rows = once(sweep)
    table = format_table(
        ["cache fraction", "slots", "efficiency", "R"],
        [[f"{f:.0%}", s, f"{e:.1%}", f"{r:.2f}"] for f, s, e, r in rows],
        title=f"Fig. 9 — {name}",
    )
    print_block(f"Fig. 9 — {name}", table)

    effs = [e for _, _, e, _ in rows]
    reuses = [r for _, _, _, r in rows]
    if name == "microscopy":
        # Flat: the data set always fits (R stays 1).
        assert all(r == pytest.approx(1.0) for r in reuses)
        assert max(effs) - min(effs) < 0.1
    else:
        # Efficiency must not decrease as the cache grows...
        assert effs[-1] >= effs[0]
        # ...R must shrink monotonically (within noise) as cache grows...
        assert reuses[0] > reuses[-1]
        # ...and even the smallest cache keeps a usable efficiency
        # (the paper: 52.5% at 1.7% of the bioinformatics inputs).
        assert effs[0] > 0.3


def test_fig10_forensics_threads_vs_cache(once):
    app = SCALED_APPS["forensics"]
    sizes = (app.host_slots, app.host_slots // 2, app.host_slots // 4)

    def sweep():
        out = []
        for host_slots in sizes:
            rep = run_scaled(app, n_nodes=1, host_cache_slots=max(3, host_slots))
            gpu = next(iter(rep.gpu_busy.values()))
            out.append(
                {
                    "host_slots": host_slots,
                    "gpu": gpu["preprocess"] + gpu["compare"],
                    "cpu": sum(rep.cpu_busy.values()),
                    "io": sum(rep.io_busy.values()),
                    "h2d": sum(rep.h2d_busy.values()),
                    "runtime": rep.runtime,
                    "R": rep.reuse_factor,
                }
            )
        return out

    rows = once(sweep)
    table = format_table(
        ["host slots", "GPU s", "CPU s", "IO s", "H2D s", "run time s", "R"],
        [
            [r["host_slots"], f"{r['gpu']:.2f}", f"{r['cpu']:.2f}", f"{r['io']:.2f}",
             f"{r['h2d']:.2f}", f"{r['runtime']:.2f}", f"{r['R']:.2f}"]
            for r in rows
        ],
        title="Fig. 10 — forensics per-thread time vs host cache size",
    )
    print_block("Fig. 10", table)

    # Paper shape: every resource total grows as the cache shrinks.
    big, _, small = rows
    assert small["R"] > big["R"]
    assert small["cpu"] > big["cpu"]
    assert small["io"] > big["io"]
    assert small["gpu"] >= big["gpu"]
    assert small["runtime"] > big["runtime"]
