"""Data-plane shoot-out: queue vs shared-memory transport, batched results.

Runs the same all-pairs workload (deterministic synthetic app with
~256 KB pre-processed payloads, so the payload/descriptor ratio is
realistic) on the real multi-process cluster runtime under each
configuration of the data plane:

- ``queue`` transport, ``result_batch=1`` — PR 1 behaviour: every
  remote cache hit pickles the full payload through a pipe and every
  completed pair is its own coordinator message;
- ``queue`` transport, batched results;
- ``shm`` transport, batched results — payloads live in shared-memory
  segments, only ``(segment, offset, shape, dtype)`` descriptors and
  result blocks cross the wire.

Reported per configuration: wall-clock, pairs/s, remote hits, bytes
serialized over the message wire, total protocol messages, and the
per-kind message split — the direct evidence that the shm descriptors
cut serialized bytes per fetch and batching cuts result messages.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_transport.py -q -s
"""

import numpy as np

from repro.core.api import Application
from repro.data.filestore import InMemoryStore
from repro.runtime.cluster import ClusterConfig, ClusterRocketRuntime
from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig
from repro.util.tables import format_table

from _common import print_block, write_bench_json

N_ITEMS = 12
PAYLOAD_FLOATS = 32768  # 256 KB pre-processed payload per item
N_NODES = 3
RESULT_BATCH = 32
CONFIG = dict(
    n_devices=1,
    device_cache_slots=8,
    host_cache_slots=16,
    leaf_size=2,
    seed=11,
    watchdog_seconds=300.0,
)

#: (label, ClusterConfig data-plane kwargs) per benchmarked configuration.
PLANS = [
    ("queue / per-pair", dict(transport="queue", result_batch=1)),
    (f"queue / batch={RESULT_BATCH}", dict(transport="queue", result_batch=RESULT_BATCH)),
    (f"shm   / batch={RESULT_BATCH}", dict(transport="shm", result_batch=RESULT_BATCH)),
]


class PayloadApp(Application):
    """Deterministic toy app with large pre-processed payloads."""

    def file_name(self, key):
        return f"{key}.bin"

    def parse(self, key, file_contents):
        return np.frombuffer(file_contents, dtype=np.float64).copy()

    def preprocess(self, key, parsed):
        return parsed * 0.5

    def compare(self, key_a, a, key_b, b):
        return np.asarray(float(a[:64].sum() * b[:64].sum()))

    def postprocess(self, key_a, key_b, raw):
        return float(raw)


def make_workload():
    store = InMemoryStore()
    keys = []
    for i in range(N_ITEMS):
        key = f"item{i:02d}"
        store.write(f"{key}.bin", np.full(PAYLOAD_FLOATS, float(i + 1)).tobytes())
        keys.append(key)
    return PayloadApp(), store, keys


def test_transport_shootout(once):
    """Bytes serialized and messages sent per data-plane configuration."""
    app, store, keys = make_workload()

    local = LocalRocketRuntime(app, store, RocketConfig(**CONFIG))
    baseline = local.run(keys)
    runs = {}

    def run_all():
        for label, plan in PLANS:
            runtime = ClusterRocketRuntime(
                app, store, RocketConfig(**CONFIG),
                cluster=ClusterConfig(
                    n_nodes=N_NODES, fetch_timeout=30.0, steal_timeout=5.0, **plan
                ),
            )
            runs[label] = (runtime.run(keys), runtime.last_stats)

    once(run_all)

    rows = []
    for label, _ in PLANS:
        results, stats = runs[label]
        # Cross-transport determinism: identical to the threaded baseline.
        for a, b, v in baseline.items():
            assert results.get(a, b) == v
        hits = stats.hop_stats.total_hits
        per_fetch = stats.bytes_over_wire / hits if hits else 0.0
        rows.append([
            label,
            f"{stats.runtime:6.2f}s",
            f"{stats.throughput:7.1f}",
            f"{hits}/{stats.hop_stats.requests}",
            f"{stats.bytes_over_wire / 1e3:9.1f} kB",
            f"{per_fetch / 1e3:8.2f} kB",
            stats.messages,
            "/".join(str(stats.message_kinds[k]) for k in ("fetch", "grant", "result", "control")),
        ])

    print_block(
        f"Transport shoot-out ({N_ITEMS} items x {PAYLOAD_FLOATS * 8 // 1024} kB payloads, "
        f"{N_NODES} nodes)",
        format_table(
            ["data plane", "wall", "pairs/s", "hits", "serialized", "per fetch",
             "msgs", "fetch/grant/result/ctl"],
            rows,
            title=f"{baseline.n_pairs} pairs; serialized = payload bytes on the message wire",
        ),
    )

    write_bench_json(
        "transport",
        {
            label: {
                "runtime_s": stats.runtime,
                "pairs_per_s": stats.throughput,
                "remote_hits": stats.hop_stats.total_hits,
                "remote_requests": stats.hop_stats.requests,
                "bytes_over_wire": stats.bytes_over_wire,
                "messages": stats.messages,
                "message_kinds": dict(stats.message_kinds),
            }
            for label, (_, stats) in runs.items()
        },
    )

    (_, per_pair), (_, batched), (_, shm) = (runs[label] for label, _ in PLANS)

    # Result batching: the batched runs ship far fewer result messages
    # than the per-pair baseline (which sends exactly one per pair).
    assert per_pair.message_kinds["result"] == per_pair.n_pairs
    assert batched.message_kinds["result"] < per_pair.message_kinds["result"] / 4
    assert shm.message_kinds["result"] < per_pair.message_kinds["result"] / 4

    # Zero-copy payloads: with remote hits on both sides, the shm run
    # serializes orders of magnitude fewer bytes per fetch than either
    # queue run pays for a single payload.
    payload_bytes = PAYLOAD_FLOATS * 8
    assert batched.hop_stats.total_hits >= 1
    assert batched.bytes_over_wire >= batched.hop_stats.total_hits * payload_bytes
    if shm.hop_stats.total_hits:
        assert shm.bytes_over_wire < shm.hop_stats.total_hits * 1024
        assert shm.bytes_over_wire < batched.bytes_over_wire
