"""Fig. 8 — per-thread processing time vs overall run time, one node.

For each application on one TitanX Maxwell node: the total busy time of
every resource thread (GPU split into preprocess/compare, CPU pool,
H2D, D2H, I/O) against the overall run time and the modeled lower bound
T_min.

Paper shapes to reproduce: the GPU bar dominates and nearly equals the
run time (asynchronous processing overlaps everything else); system
efficiencies are high (paper: 94.6% / 88.5% / 99.2%).
"""

import pytest

from repro.util.tables import format_table

from _common import SCALED_APPS, print_block, run_scaled


@pytest.mark.parametrize("name", ["forensics", "bioinformatics", "microscopy"])
def test_fig8_thread_times(once, name):
    app = SCALED_APPS[name]
    report = once(lambda: run_scaled(app, n_nodes=1))

    lane = next(iter(report.gpu_busy))
    gpu = report.gpu_busy[lane]
    rows = [
        ["GPU (preprocess)", gpu["preprocess"]],
        ["GPU (compare)", gpu["compare"]],
        ["CPU", sum(report.cpu_busy.values())],
        ["CPU->GPU", sum(report.h2d_busy.values())],
        ["GPU->CPU", sum(report.d2h_busy.values())],
        ["IO", sum(report.io_busy.values())],
        ["overall run time", report.runtime],
        ["T_min (model)", report.t_min_cluster],
    ]
    table = format_table(["thread", "busy seconds"], rows, title=f"Fig. 8 — {name} (1x TitanX Maxwell)")
    print_block(
        f"Fig. 8 — {name}",
        table + f"\n\nsystem efficiency = {report.efficiency:.1%}   R = {report.reuse_factor:.2f}",
    )

    gpu_total = gpu["preprocess"] + gpu["compare"]
    # Paper shape 1: the run time ~ GPU busy time (excellent overlap).
    assert report.runtime == pytest.approx(gpu_total, rel=0.25)
    # Paper shape 2: GPU-bound — every other lane is smaller than the GPU bar.
    assert sum(report.h2d_busy.values()) < gpu_total
    assert sum(report.io_busy.values()) < report.runtime
    # Paper shape 3: high single-node efficiency (paper: 88.5-99.2%).
    assert report.efficiency > 0.75
