"""Fig. 12 — speedup, efficiency, R, and I/O usage, 1-16 nodes.

For each application, scale from 1 to 16 single-TitanX nodes twice:
with and without the third-level (distributed) cache.

Paper shapes to reproduce:

- microscopy speeds up near-linearly regardless (compute-bound);
- forensics/bioinformatics show *better* speedup with the distributed
  cache than without (the paper reports super-linear 16.1x/16.9x with
  vs 14.7x/14.6x without);
- with the distributed cache R *falls* as nodes are added (combined
  memory grows); without it R *rises* (independent reloading);
- average I/O usage grows far slower with the distributed cache than
  without (paper: 4.1x vs ~31x over one node at 16 nodes).
"""

import pytest

from repro.util.tables import format_table

from _common import SCALED_APPS, print_block, run_scaled

NODE_COUNTS = (1, 2, 4, 8, 16)


def _sweep(app, distributed):
    rows = []
    for n_nodes in NODE_COUNTS:
        rep = run_scaled(app, n_nodes=n_nodes, distributed_cache=distributed)
        rows.append(rep)
    return rows


@pytest.mark.parametrize("name", ["forensics", "bioinformatics", "microscopy"])
def test_fig12_scaling(once, name):
    app = SCALED_APPS[name]
    with_dc, without_dc = once(lambda: (_sweep(app, True), _sweep(app, False)))

    t1 = with_dc[0].runtime
    rows = []
    for n_nodes, rep_on, rep_off in zip(NODE_COUNTS, with_dc, without_dc):
        rows.append(
            [
                n_nodes,
                f"{t1 / rep_on.runtime:.2f}x",
                f"{t1 / rep_off.runtime:.2f}x",
                f"{rep_on.efficiency:.0%}",
                f"{rep_off.efficiency:.0%}",
                f"{rep_on.reuse_factor:.2f}",
                f"{rep_off.reuse_factor:.2f}",
                f"{rep_on.avg_io_usage / 1e6:.1f}",
                f"{rep_off.avg_io_usage / 1e6:.1f}",
            ]
        )
    table = format_table(
        ["nodes", "speedup+dc", "speedup-dc", "eff+dc", "eff-dc", "R+dc", "R-dc", "IO+dc MB/s", "IO-dc MB/s"],
        rows,
        title=f"Fig. 12 — {name} (1-16 TitanX Maxwell nodes)",
    )
    print_block(f"Fig. 12 — {name}", table)

    on16, off16 = with_dc[-1], without_dc[-1]
    speedup_on = t1 / on16.runtime
    speedup_off = t1 / off16.runtime

    if name == "microscopy":
        # Compute-bound: scales well either way; I/O negligible.
        assert speedup_on > 10.0
        assert on16.avg_io_usage < 5e6
        return

    # Data-intensive applications:
    # 1. distributed cache gives the better speedup at 16 nodes;
    assert speedup_on > speedup_off
    # 2. R falls with nodes when the distributed cache is on ...
    assert on16.reuse_factor < with_dc[0].reuse_factor
    # ... and does not fall without it.
    assert off16.reuse_factor >= without_dc[0].reuse_factor * 0.95
    # 3. at 16 nodes the distributed cache needs much less I/O.
    assert on16.avg_io_usage < 0.6 * off16.avg_io_usage
    # 4. scaling is effective in absolute terms.
    assert speedup_on > 8.0


def test_fig12_super_linear_regime(once):
    """The paper's super-linear claim, at the scale where it emerges.

    Super-linearity needs the single-node R to be high (severe cache
    pressure) while 16 combined host caches hold everything; we tighten
    the per-node host cache to re-create that regime.
    """
    app = SCALED_APPS["forensics"]
    tight_host = max(3, app.profile.n_items // 12)  # ~8% of items per node

    def run_pair():
        # h=3 compensates for faster candidate churn at reduced scale
        # (see bench_fig15_large_scale's docstring and EXPERIMENTS.md).
        base = run_scaled(app, n_nodes=1, host_cache_slots=tight_host, max_hops=3)
        dist = run_scaled(app, n_nodes=16, host_cache_slots=tight_host, max_hops=3)
        return base, dist

    base, dist = once(run_pair)
    speedup = base.runtime / dist.runtime
    print_block(
        "Fig. 12 — super-linear check (tight host cache)",
        f"R(1 node) = {base.reuse_factor:.2f}  ->  R(16 nodes) = {dist.reuse_factor:.2f}\n"
        f"speedup on 16 nodes: {speedup:.2f}x (linear would be 16.00x)",
    )
    assert dist.reuse_factor < base.reuse_factor * 0.6
    assert speedup > 14.0  # super-linear or at worst near-linear
