"""Rocket-as-a-service — concurrent served clients vs. cold one-shot runs.

The serving daemon's reason to exist: N users sharing one warm session
amortize process spawn, transport setup and the whole load pipeline,
where N independent one-shot runs each pay all of it from scratch.
This benchmark measures exactly that, end to end through the real
socket protocol, on the multi-process cluster backend:

- **cold**: N one-shot runs of a load-heavy workload, each on a fresh
  runtime (spawn + cold caches + full loads);
- **served**: the same N workloads submitted by N concurrent socket
  clients of one daemon whose session was warmed by a single priming
  job — jobs co-run under the FAIR scheduler against warm caches.

Aggregate throughput (total pairs / wall time) through the daemon must
be at least 2x the cold aggregate.

Run:  python -m pytest benchmarks/bench_serve.py -q -s
"""

import threading
import time

from repro.core.session import RocketSession
from repro.core.workload import AllPairs
from repro.serve import RocketServer, connect
from repro.util.tables import format_table

from _common import print_block, write_bench_json
from bench_session import CLUSTER, CONFIG, LoadHeavyApp, make_corpus, make_runtime

N_CLIENTS = 4


def test_served_clients_beat_cold_one_shots(once):
    """Aggregate served throughput >= 2x N cold one-shot runs."""
    store, keys = make_corpus()
    workload_pairs = AllPairs(keys).n_pairs
    measured = {}

    def run_both():
        # Cold: every "user" spawns their own runtime and pays the
        # full load pipeline — the pre-daemon workflow.
        t0 = time.perf_counter()
        cold_matrices = []
        for _ in range(N_CLIENTS):
            cold_matrices.append(make_runtime(store).run(AllPairs(keys)))
        measured["cold_s"] = time.perf_counter() - t0
        measured["cold_results"] = cold_matrices[0]

        # Served: one daemon, one warm session, N concurrent tenants.
        session = RocketSession._wrap(make_runtime(store), policy="fair")
        server = RocketServer(session, keys).start()
        try:
            with connect(server.address, tenant="primer") as primer:
                primer.run(AllPairs(keys))  # warm the caches once

            matrices = [None] * N_CLIENTS
            barrier = threading.Barrier(N_CLIENTS + 1)

            def client(idx):
                with connect(server.address, tenant=f"user{idx}") as c:
                    barrier.wait()
                    matrices[idx] = c.submit(AllPairs(keys)).result(timeout=300)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(N_CLIENTS)
            ]
            for t in threads:
                t.start()
            barrier.wait()
            t0 = time.perf_counter()
            for t in threads:
                t.join()
            measured["served_s"] = time.perf_counter() - t0
            measured["served_results"] = matrices
        finally:
            server.close()

    once(run_both)

    total_pairs = N_CLIENTS * workload_pairs
    cold_tput = total_pairs / measured["cold_s"]
    served_tput = total_pairs / measured["served_s"]
    speedup = served_tput / cold_tput
    rows = [
        [
            f"{N_CLIENTS} cold one-shot runs",
            f"{measured['cold_s']:.3f} s",
            f"{cold_tput:.0f} pairs/s",
        ],
        [
            f"{N_CLIENTS} served clients",
            f"{measured['served_s']:.3f} s",
            f"{served_tput:.0f} pairs/s",
        ],
    ]
    print_block(
        f"Rocket-as-a-service ({CLUSTER['n_nodes']} nodes, {len(keys)} items, "
        f"{N_CLIENTS} clients, {workload_pairs} pairs per job)",
        format_table(
            ["execution", "wall time", "aggregate throughput"],
            rows,
            title=f"served-vs-cold throughput {speedup:.2f}x",
        ),
    )

    write_bench_json(
        "serve",
        {
            "cold_s": measured["cold_s"],
            "served_s": measured["served_s"],
            "cold_pairs_per_s": cold_tput,
            "served_pairs_per_s": served_tput,
            "speedup": speedup,
            "n_clients": N_CLIENTS,
            "pairs_per_job": workload_pairs,
            "n_nodes": CLUSTER["n_nodes"],
            "n_devices": CONFIG["n_devices"],
        },
    )

    # Served results are value-identical to cold runs, for every client.
    expected = sorted(map(tuple, measured["cold_results"].items()))
    for matrix in measured["served_results"]:
        assert matrix is not None
        assert sorted(map(tuple, matrix.items())) == expected
    # The acceptance bar: >= 2x aggregate throughput through the daemon.
    assert speedup >= 2.0, (
        f"served clients only {speedup:.2f}x cold one-shot throughput"
    )
