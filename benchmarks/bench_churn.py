"""Membership-churn benchmark — node kill + join during a fixed workload.

Runs the same all-pairs workload on the real multi-process elastic
cluster three ways:

1. **undisturbed** — 3 nodes, no churn (the baseline);
2. **kill** — 3 nodes, one SIGKILLed mid-job (fault recovery);
3. **churn** — 2 nodes, one joins then one is killed mid-job.

The acceptance floor is *bounded completion-time inflation*: losing a
third of the cluster mid-job may cost wall-clock (the survivors
re-execute the dead node's unfinished blocks), but it must stay within
``MAX_INFLATION``x of the undisturbed run — the difference between a
recovered job and an effectively restarted one — and every variant
must produce results value-identical to the baseline.

Run:  python -m pytest benchmarks/bench_churn.py -q -s
"""

import os
import signal
import time

import numpy as np

from repro.apps import ForensicsApplication
from repro.core.workload import AllPairs
from repro.data.filestore import InMemoryStore
from repro.data.synthetic import make_forensics_dataset
from repro.runtime.cluster import ClusterConfig, ClusterRocketRuntime
from repro.runtime.localrocket import RocketConfig
from repro.util.tables import format_table

from _common import print_block, write_bench_json

N_IMAGES = 14
CONFIG = dict(
    n_devices=1,
    device_cache_slots=8,
    host_cache_slots=16,
    leaf_size=2,
    seed=7,
    watchdog_seconds=300.0,
)
#: Completion-time ceiling for the disturbed runs, as a multiple of the
#: undisturbed run.  Loose on purpose: CI machines are noisy and the
#: workload is seconds-scale, so this guards against recovery stalling
#: (timeouts, lost blocks), not against modest re-execution cost.
MAX_INFLATION = 6.0


def make_workload():
    store = InMemoryStore()
    dataset = make_forensics_dataset(
        store, n_images=N_IMAGES, image_shape=(512, 512), seed=7
    )
    return ForensicsApplication(), store, dataset.keys


def cluster_config(n_nodes):
    return ClusterConfig(
        n_nodes=n_nodes, elastic=True, fetch_timeout=30.0, steal_timeout=5.0
    )


def run_variant(app, store, keys, n_nodes, disturb=None):
    """One timed session run; ``disturb(session)`` fires mid-job."""
    runtime = ClusterRocketRuntime(
        app, store, RocketConfig(**CONFIG), cluster=cluster_config(n_nodes)
    )
    session = runtime.open_session()
    try:
        start = time.perf_counter()
        handle = session.submit(AllPairs(keys))
        if disturb is not None:
            time.sleep(0.25)
            disturb(session)
        results = handle.result()
        elapsed = time.perf_counter() - start
        return results, elapsed, handle.accounting
    finally:
        session.close()


def test_churn_bounded_inflation(once):
    app, store, keys = make_workload()

    runs = {}

    def run_all():
        runs["undisturbed"] = run_variant(app, store, keys, n_nodes=3)

        def kill_one(session):
            os.kill(session._procs[1].pid, signal.SIGKILL)

        runs["kill"] = run_variant(app, store, keys, n_nodes=3, disturb=kill_one)

        def join_then_kill(session):
            session.add_node()
            os.kill(session._procs[0].pid, signal.SIGKILL)

        runs["churn"] = run_variant(
            app, store, keys, n_nodes=2, disturb=join_then_kill
        )

    once(run_all)

    baseline_results, baseline_s, _ = runs["undisturbed"]
    rows = []
    report = {"n_images": N_IMAGES, "n_pairs": baseline_results.n_pairs}
    for variant, (results, elapsed, acct) in runs.items():
        # Value parity: churn may reorder and re-execute, never corrupt.
        assert results.is_complete()
        mismatches = sum(
            1
            for a, b, v in baseline_results.items()
            if results.get(a, b) != v
        )
        assert mismatches == 0, f"{variant}: {mismatches} mismatching pairs"
        inflation = elapsed / baseline_s if baseline_s > 0 else float("inf")
        rows.append([
            variant,
            f"{elapsed:6.2f} s",
            f"{inflation:4.2f}x",
            acct.nodes_lost,
            acct.pairs_recovered,
        ])
        report[variant] = {
            "seconds": elapsed,
            "inflation": inflation,
            "nodes_lost": acct.nodes_lost,
            "pairs_recovered": acct.pairs_recovered,
        }

    print_block(
        "Membership churn (real processes, elastic sessions)",
        format_table(
            ["variant", "completion", "vs baseline", "nodes lost", "pairs recovered"],
            rows,
            title=f"forensics, {N_IMAGES} items, {baseline_results.n_pairs} pairs",
        ),
    )
    write_bench_json("churn", report)

    # The acceptance floor: recovery must stay a recovery, not a rerun
    # from scratch after a timeout cascade.
    for variant in ("kill", "churn"):
        inflation = report[variant]["inflation"]
        assert inflation <= MAX_INFLATION, (
            f"{variant} run inflated {inflation:.2f}x over undisturbed "
            f"(bound {MAX_INFLATION}x)"
        )
