"""Ablation studies for Rocket's design choices (DESIGN.md Section 5).

The paper motivates several mechanism choices without isolating them;
these ablations quantify each one on the simulated platform:

- eviction policy (LRU vs FIFO vs RANDOM) — Section 4.1's LRU choice;
- steal order (largest vs smallest task) — Section 4.2's "the task
  stolen is always at the highest level";
- hierarchical vs uniform victim selection — "workers first attempt to
  steal from a worker on the same node";
- concurrent-job limit — Section 4.2/4.3's back-pressure parameter;
- divide-and-conquer (Morton) order vs row-major enumeration — the
  locality claim behind the quadrant decomposition.
"""

import pytest

from repro.cache.policy import EvictionPolicy
from repro.scheduling.quadtree import iter_pairs_morton
from repro.scheduling.workstealing import StealOrder
from repro.util.tables import format_table

from _common import SCALED_APPS, print_block, run_scaled


def test_ablation_eviction_policy(once):
    app = SCALED_APPS["forensics"]

    def sweep():
        return {
            policy.value: run_scaled(app, n_nodes=1, eviction=policy)
            for policy in EvictionPolicy
        }

    reports = once(sweep)
    table = format_table(
        ["policy", "run time (s)", "R", "efficiency"],
        [[k, f"{r.runtime:.2f}", f"{r.reuse_factor:.2f}", f"{r.efficiency:.0%}"] for k, r in reports.items()],
        title="Ablation — eviction policy (forensics, 1 node)",
    )
    print_block("Ablation: eviction", table)
    # LRU must not lose to RANDOM on this reuse-heavy access pattern.
    assert reports["lru"].reuse_factor <= reports["random"].reuse_factor * 1.05
    assert reports["lru"].runtime <= reports["random"].runtime * 1.1


def test_ablation_steal_order(once):
    app = SCALED_APPS["forensics"]

    def sweep():
        return {
            order.value: run_scaled(app, n_nodes=8, steal_order=order)
            for order in StealOrder
        }

    reports = once(sweep)
    table = format_table(
        ["steal order", "run time (s)", "remote steals", "R"],
        [
            [k, f"{r.runtime:.3f}", r.remote_steals, f"{r.reuse_factor:.2f}"]
            for k, r in reports.items()
        ],
        title="Ablation — steal largest vs smallest task (8 nodes)",
    )
    print_block("Ablation: steal order", table)
    largest, smallest = reports["largest"], reports["smallest"]
    # Stealing the largest task needs far fewer steal operations
    # ("the most work per steal request").
    assert largest.remote_steals + largest.local_steals < (
        smallest.remote_steals + smallest.local_steals
    )
    # And it must not be slower beyond noise.
    assert largest.runtime <= smallest.runtime * 1.15


def test_ablation_hierarchical_stealing(once):
    app = SCALED_APPS["forensics"]

    def sweep():
        return {
            label: run_scaled(app, n_nodes=8, gpus_per_node=2, hierarchical_stealing=flag)
            for label, flag in (("hierarchical", True), ("uniform", False))
        }

    reports = once(sweep)
    table = format_table(
        ["victim selection", "run time (s)", "local steals", "remote steals", "R"],
        [
            [k, f"{r.runtime:.3f}", r.local_steals, r.remote_steals, f"{r.reuse_factor:.2f}"]
            for k, r in reports.items()
        ],
        title="Ablation — hierarchical vs uniform victim selection (8x2 GPUs)",
    )
    print_block("Ablation: victim selection", table)
    hier, uni = reports["hierarchical"], reports["uniform"]
    # Node-first stealing shifts steals from remote to local peers.
    hier_local_share = hier.local_steals / max(hier.local_steals + hier.remote_steals, 1)
    uni_local_share = uni.local_steals / max(uni.local_steals + uni.remote_steals, 1)
    assert hier_local_share > uni_local_share
    assert hier.runtime <= uni.runtime * 1.15


def test_ablation_concurrent_job_limit(once):
    app = SCALED_APPS["forensics"]
    limits = (1, 4, 16, 64)

    def sweep():
        return {lim: run_scaled(app, n_nodes=1, concurrent_jobs=lim) for lim in limits}

    reports = once(sweep)
    table = format_table(
        ["job limit", "run time (s)", "efficiency"],
        [[k, f"{r.runtime:.2f}", f"{r.efficiency:.0%}"] for k, r in reports.items()],
        title="Ablation — concurrent-job limit (forensics, 1 node)",
    )
    print_block("Ablation: job limit", table)
    # The paper's asynchronous-processing claim: enough jobs in flight
    # are required to hide load latency.  One job must be clearly worse;
    # the curve must flatten at higher limits.
    assert reports[1].runtime > reports[16].runtime * 1.2
    assert reports[64].runtime == pytest.approx(reports[16].runtime, rel=0.25)


def test_ablation_morton_vs_rowmajor_locality(once):
    """The D&C enumeration order itself: simulated cache behaviour.

    Replays both enumeration orders through an LRU slot cache of the
    benchmark's device size and compares miss counts — the pure
    locality effect of the quadrant decomposition, isolated from the
    runtime.
    """
    from repro.cache.slots import SlotCache

    n = 96
    slots = SCALED_APPS["forensics"].device_slots

    def replay(pairs):
        cache = SlotCache(slots)
        misses = 0
        for i, j in pairs:
            for item in (i, j):
                slot = cache.lookup(item, count=False)
                if slot is None:
                    misses += 1
                    wslot = cache.reserve(item)
                    assert wslot is not None
                    cache.publish(wslot)
                else:
                    cache.pin(slot)
                    cache.unpin(slot)
        return misses

    def both():
        morton = replay(iter_pairs_morton(n))
        row_major = replay((i, j) for i in range(n) for j in range(i + 1, n))
        return morton, row_major

    morton, row_major = once(both)
    print_block(
        "Ablation — enumeration order vs cache misses",
        f"LRU cache of {slots} slots, n={n} items, {n * (n - 1) // 2} pairs\n"
        f"Morton (divide-and-conquer) misses: {morton}\n"
        f"row-major misses:                   {row_major}\n"
        f"reduction: {row_major / morton:.1f}x",
    )
    # The quadrant order must reduce misses by a large factor.
    assert morton * 2 < row_major


def test_ablation_cache_aware_stealing(once):
    """Section 7 extension: does cache-aware victim selection help?

    Compared on a cluster with tight host caches, where picking a
    victim whose task overlaps locally cached items should translate
    into fewer loads.
    """
    app = SCALED_APPS["forensics"]
    tight = max(3, app.host_slots // 2)

    def sweep():
        return {
            label: run_scaled(
                app, n_nodes=8, host_cache_slots=tight, cache_aware_stealing=flag
            )
            for label, flag in (("random victims", False), ("cache-aware", True))
        }

    reports = once(sweep)
    table = format_table(
        ["stealing", "run time (s)", "R", "remote steals"],
        [
            [k, f"{r.runtime:.3f}", f"{r.reuse_factor:.2f}", r.remote_steals]
            for k, r in reports.items()
        ],
        title="Ablation — cache-aware work stealing (8 nodes, tight host caches)",
    )
    print_block("Ablation: cache-aware stealing", table)
    aware = reports["cache-aware"]
    plain = reports["random victims"]
    # The extension must not hurt; it may help modestly.
    assert aware.reuse_factor <= plain.reuse_factor * 1.1
    assert aware.runtime <= plain.runtime * 1.1


def test_ablation_warm_caches(once):
    """Section 7 extension: persistent caches across runs."""
    app = SCALED_APPS["forensics"]

    def sweep():
        return {
            label: run_scaled(app, n_nodes=4, warm_host_caches=flag)
            for label, flag in (("cold start", False), ("warm start", True))
        }

    reports = once(sweep)
    table = format_table(
        ["start", "run time (s)", "loads", "storage MB"],
        [
            [k, f"{r.runtime:.3f}", r.total_loads, f"{r.storage_bytes / 1e6:.1f}"]
            for k, r in reports.items()
        ],
        title="Ablation — warm (persistent) host caches (4 nodes)",
    )
    print_block("Ablation: warm caches", table)
    warm, cold = reports["warm start"], reports["cold start"]
    assert warm.total_loads < cold.total_loads
    assert warm.storage_bytes < cold.storage_bytes
