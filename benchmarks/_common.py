"""Shared setup for the benchmark/experiment harness.

Every ``bench_*`` module regenerates one of the paper's tables or
figures.  Experiments run at reduced scale (a Python DES cannot step
through 12.4 M pairs); the scaling follows the *faithful scaling law*
of :func:`repro.sim.workload.scaled_profile` — per-item load costs
shrink with ``n`` — and cache capacities shrink by the same factor, so
the cache-pressure regime and hence the figure *shapes* are preserved.
EXPERIMENTS.md records paper-vs-measured numbers for every experiment.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace

from repro.sim.cluster import ClusterSpec
from repro.sim.rocketsim import RocketSimConfig, SimReport, run_simulation
from repro.sim.storage import StorageSpec
from repro.sim.workload import BIOINFORMATICS, FORENSICS, MICROSCOPY, WorkloadProfile, scaled_profile

__all__ = [
    "ScaledApp",
    "SCALED_APPS",
    "run_scaled",
    "scale_cluster",
    "print_block",
    "write_bench_json",
]


@dataclass(frozen=True)
class ScaledApp:
    """One application at benchmark scale, with matching cache slots.

    ``device_slots`` / ``host_slots`` are the paper's Table 1 slot
    counts multiplied by the same factor as the item count (minimum 2),
    keeping the fraction of the data set that fits in each cache level
    equal to the paper's.
    """

    name: str
    profile: WorkloadProfile
    device_slots: int
    host_slots: int
    #: n_items / paper n_items; per-request latencies scale with this too.
    scale: float = 1.0

    @classmethod
    def from_paper(
        cls, base: WorkloadProfile, n_items: int, paper_device_slots: int, paper_host_slots: int
    ) -> "ScaledApp":
        s = n_items / base.n_items
        # The device slot count is floored at 8: the concurrent-job limit
        # is bounded by device slots (deadlock safety), and with fewer
        # than ~8 in-flight jobs the runtime cannot hide load latency at
        # all — an artefact of slot-count discreteness at reduced scale,
        # not a property of the paper's configuration (81-291 slots).
        # Device-level copy overhead per miss is already scaled via the
        # workload's slot_size, so flooring only restores lookahead.
        return cls(
            name=base.name,
            profile=scaled_profile(base, n_items),
            device_slots=max(8, round(paper_device_slots * s)),
            host_slots=max(3, round(paper_host_slots * s)),
            scale=s,
        )


#: Benchmark-scale versions of the three applications.  Paper slot
#: counts (Table 1): forensics 291/1050, bioinformatics 81/280,
#: microscopy 256/256 (i.e. everything fits).
SCALED_APPS = {
    "forensics": ScaledApp.from_paper(FORENSICS, 96, 291, 1050),
    "bioinformatics": ScaledApp.from_paper(BIOINFORMATICS, 80, 81, 280),
    "microscopy": ScaledApp.from_paper(MICROSCOPY, 48, 256, 256),
}


def scale_cluster(spec: ClusterSpec, scale: float) -> ClusterSpec:
    """Scale the cluster's per-request latencies by the workload factor.

    Loads per *pair* are a factor ``1/s`` more frequent at reduced scale
    (R is scale-invariant but pair counts shrink as n^2 while loads
    shrink as n), so per-request costs — the storage server's handling
    latency and the control-message latency of the distributed-cache
    protocol — must shrink by ``s`` to keep their share of the total
    cost at the paper's value.  Bandwidths stay unscaled because the
    bytes per transfer are already scaled in the workload profile.
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    return replace(
        spec,
        storage=StorageSpec(
            bandwidth=spec.storage.bandwidth, latency=spec.storage.latency * scale
        ),
        control_latency=spec.control_latency * scale,
    )


def run_scaled(
    app: ScaledApp,
    n_nodes: int = 1,
    gpu: str = "TitanX Maxwell",
    gpus_per_node: int = 1,
    seed: int = 1,
    **config_overrides,
) -> SimReport:
    """Run one simulated experiment for a scaled application."""
    cfg = dict(
        seed=seed,
        device_cache_slots=app.device_slots,
        host_cache_slots=app.host_slots,
    )
    cfg.update(config_overrides)
    spec = scale_cluster(
        ClusterSpec.homogeneous(n_nodes, gpu=gpu, gpus_per_node=gpus_per_node), app.scale
    )
    return run_simulation(spec, app.profile, RocketSimConfig(**cfg), seed=seed)


def print_block(title: str, body: str) -> None:
    """Uniform experiment output formatting."""
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


def write_bench_json(name: str, results: dict) -> str:
    """Persist one benchmark's measured numbers as ``BENCH_<name>.json``.

    CI collects these files as workflow artifacts, so the performance
    trajectory across PRs is a series of durable measurements instead
    of living only in assert floors.  The file lands in
    ``$BENCH_OUT_DIR`` (default: the current directory) and holds
    ``{"bench": name, "results": results}``; ``results`` must be
    JSON-dumpable (plain numbers/strings/dicts/lists only).
    """
    out_dir = os.environ.get("BENCH_OUT_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"bench": name, "results": results}, fh, indent=2, sort_keys=True)
    print(f"benchmark results written to {path}")
    return path
