"""Session warm-cache reuse — back-to-back jobs vs. one-shot runs.

The paper shows end-to-end time dominated by data loading whenever the
reuse factor is low; everything Rocket gains comes from *not* re-running
the load pipeline.  One-shot ``Rocket.run()`` calls throw that state
away between calls: worker processes die, the transport fabric is
unlinked, and every cache level — device, host, distributed — starts
cold.  A :class:`~repro.core.session.RocketSession` keeps all of it
alive, so a second job over overlapping keys starts against warm
caches and an already-spawned cluster.

This benchmark measures exactly that on the real multi-process cluster
backend: a cold one-shot run vs. the same workload submitted as the
second job of a live session.  The workload is load-heavy (parse and
preprocess cost real time, the kernel is cheap), the regime where cache
reuse dominates — and asserts the warm job is at least 1.3x faster.

Run:  python -m pytest benchmarks/bench_session.py -q -s
"""

import time

import numpy as np

from repro.core.api import Application
from repro.core.workload import AllPairs
from repro.data.filestore import InMemoryStore
from repro.runtime.cluster import ClusterConfig, ClusterRocketRuntime
from repro.runtime.localrocket import RocketConfig
from repro.util.tables import format_table

from _common import print_block, write_bench_json

N_ITEMS = 12
T_PARSE = 0.012  # seconds per item parse (CPU stage)
T_PREPROCESS = 0.008  # seconds per item preprocess (device stage)
N_NODES = 2
CONFIG = dict(
    n_devices=1,
    device_cache_slots=24,
    host_cache_slots=32,
    leaf_size=2,
    seed=13,
    watchdog_seconds=120.0,
)
CLUSTER = dict(n_nodes=N_NODES, fetch_timeout=20.0, steal_timeout=5.0, result_batch=16)


class LoadHeavyApp(Application):
    """Loads dominate: parse + preprocess sleep, compare is cheap."""

    def file_name(self, key):
        return f"{key}.bin"

    def parse(self, key, file_contents):
        time.sleep(T_PARSE)
        return np.frombuffer(file_contents, dtype=np.float64).copy()

    def preprocess(self, key, parsed):
        time.sleep(T_PREPROCESS)
        return parsed * 2.0

    def compare(self, key_a, a, key_b, b):
        return np.asarray(float(a.sum() * b.sum()))

    def postprocess(self, key_a, key_b, raw):
        return float(raw)


def make_corpus():
    store = InMemoryStore()
    keys = []
    for i in range(N_ITEMS):
        key = f"item{i:02d}"
        store.write(f"{key}.bin", np.full(256, float(i + 1)).tobytes())
        keys.append(key)
    return store, keys


def make_runtime(store):
    return ClusterRocketRuntime(
        LoadHeavyApp(), store, RocketConfig(**CONFIG), cluster=ClusterConfig(**CLUSTER)
    )


def test_session_warm_jobs_beat_cold_runs(once):
    """A warm session job >= 1.3x faster than a cold one-shot run."""
    store, keys = make_corpus()
    workload = AllPairs(keys)
    measured = {}

    def run_both():
        # Cold: a fresh one-shot run — process spawn, cold caches, full
        # load pipeline for every item.
        cold_runtime = make_runtime(store)
        t0 = time.perf_counter()
        cold_results = cold_runtime.run(workload)
        measured["cold_s"] = time.perf_counter() - t0
        measured["cold_loads"] = cold_runtime.last_stats.loads
        measured["cold_results"] = cold_results

        # Warm: the same workload as the second job of a live session.
        session = make_runtime(store).open_session()
        try:
            first = session.submit(workload)
            first.result()
            measured["first_loads"] = first.stats.loads
            t0 = time.perf_counter()
            second = session.submit(workload)
            warm_results = second.result()
            measured["warm_s"] = time.perf_counter() - t0
            measured["warm_loads"] = second.stats.loads
            measured["warm_hits"] = sum(
                ns.device_counters.hits + ns.host_counters.hits
                for ns in second.stats.node_stats
            )
            measured["warm_results"] = warm_results
        finally:
            session.close()

    once(run_both)

    speedup = measured["cold_s"] / measured["warm_s"]
    rows = [
        ["cold one-shot run", f"{measured['cold_s']:.3f} s", measured["cold_loads"], "-"],
        [
            "warm session job",
            f"{measured['warm_s']:.3f} s",
            measured["warm_loads"],
            measured["warm_hits"],
        ],
    ]
    print_block(
        f"Session reuse ({N_NODES} nodes, {N_ITEMS} items, "
        f"parse {1e3 * T_PARSE:.0f} ms + preprocess {1e3 * T_PREPROCESS:.0f} ms per load)",
        format_table(
            ["execution", "wall time", "loads", "warm cache hits"],
            rows,
            title=f"warm-vs-cold speedup {speedup:.2f}x",
        ),
    )

    write_bench_json(
        "session",
        {
            "cold_s": measured["cold_s"],
            "warm_s": measured["warm_s"],
            "speedup": speedup,
            "cold_loads": measured["cold_loads"],
            "first_loads": measured["first_loads"],
            "warm_loads": measured["warm_loads"],
            "warm_hits": measured["warm_hits"],
            "n_items": N_ITEMS,
            "n_nodes": N_NODES,
        },
    )

    # Identical results regardless of cache temperature.
    for a, b, v in measured["cold_results"].items():
        assert measured["warm_results"].get(a, b) == v
    # The second job really ran against warm caches.
    assert measured["warm_loads"] < measured["first_loads"]
    assert measured["warm_hits"] > 0
    # The acceptance bar: warm >= 1.3x cold on the cluster backend.
    assert speedup >= 1.3, f"warm session job only {speedup:.2f}x faster than cold run"
