"""Table 1 — application characteristics.

Regenerates both halves of the paper's Table 1:

1. the *workload profile* half (item counts, data sizes, pair counts,
   cache slot counts) directly from the transcribed profiles, verifying
   the derived quantities against the paper's values;
2. the *stage timing* half (parse / preprocess / compare mean +- std) by
   actually executing our NumPy application kernels on synthetic data —
   the laptop-scale analogue of the paper's TitanX measurements.

Absolute times differ from the paper (NumPy on CPU vs CUDA kernels);
the *structure* must match: for forensics and bioinformatics the load
stages dominate the comparison by orders of magnitude, while microscopy
is the opposite.
"""

import numpy as np
import pytest

from repro.apps.bioinformatics.app import BioinformaticsApplication
from repro.apps.forensics.app import ForensicsApplication
from repro.apps.microscopy.app import MicroscopyApplication
from repro.data.filestore import InMemoryStore
from repro.data.synthetic import (
    make_bioinformatics_dataset,
    make_forensics_dataset,
    make_microscopy_dataset,
)
from repro.sim.workload import BIOINFORMATICS, FORENSICS, MICROSCOPY
from repro.util.tables import format_table

from _common import print_block


def test_table1_profile_half(once):
    """Static columns of Table 1 from the transcribed profiles."""
    once(lambda: None)  # trivially timed; the table below is the artefact
    rows = []
    for prof, dev_slots, host_slots in (
        (FORENSICS, 291, 1050),
        (BIOINFORMATICS, 81, 280),
        (MICROSCOPY, 256, 256),
    ):
        rows.append(
            [
                prof.name,
                prof.n_items,
                f"{prof.n_items * prof.file_size / 1e9:.1f} GB",
                f"{prof.n_items * prof.slot_size / 1e9:.1f} GB",
                prof.n_pairs,
                f"{prof.total_pairwise_bytes / 1e12:.1f} TB",
                f"{prof.slot_size / 1e6:.1f} MB",
                dev_slots,
                host_slots,
            ]
        )
    table = format_table(
        ["app", "n files", "raw on disk", "in memory", "pairs", "pairwise total", "slot", "dev slots", "host slots"],
        rows,
        title="Table 1 (profile half)",
    )
    print_block("Table 1 — data characteristics", table)

    # Paper checks: 19.4 GB raw / 189.7 GB in memory for forensics;
    # ~945 TB pairwise; 12,397,710 pairs.
    assert FORENSICS.n_pairs == 12_397_710
    assert FORENSICS.n_items * FORENSICS.file_size == pytest.approx(19.4e9, rel=0.01)
    assert FORENSICS.n_items * FORENSICS.slot_size == pytest.approx(189.7e9, rel=0.02)
    assert FORENSICS.total_pairwise_bytes == pytest.approx(944.7e12, rel=0.06)
    assert BIOINFORMATICS.n_pairs == 3_123_750


def _stage_times(app, store, keys, n_samples=10):
    """Measure parse / preprocess / compare wall times of real kernels."""
    import time

    parse_t, pre_t, cmp_t = [], [], []
    parsed, items = {}, {}
    for key in keys:
        blob = store.read(app.file_name(key))
        t0 = time.perf_counter()
        parsed[key] = app.parse(key, blob)
        parse_t.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        items[key] = app.preprocess(key, parsed[key])
        pre_t.append(time.perf_counter() - t0)
    pairs = [(a, b) for i, a in enumerate(keys) for b in keys[i + 1 :]][:n_samples]
    for a, b in pairs:
        t0 = time.perf_counter()
        app.compare(a, items[a], b, items[b])
        cmp_t.append(time.perf_counter() - t0)
    ms = lambda xs: (1e3 * float(np.mean(xs)), 1e3 * float(np.std(xs)))  # noqa: E731
    return ms(parse_t), ms(pre_t), ms(cmp_t)


def test_table1_timing_half(once):
    """Measured stage times of the real NumPy kernels (laptop scale)."""

    def run():
        rows = []
        store = InMemoryStore()
        ds = make_forensics_dataset(store, n_images=8, n_cameras=2, image_shape=(128, 128), seed=1)
        rows.append(("forensics", *_stage_times(ForensicsApplication(), store, ds.keys)))

        store = InMemoryStore()
        ds = make_bioinformatics_dataset(store, n_species=8, n_proteins=6, protein_length=400, seed=1)
        rows.append(("bioinformatics", *_stage_times(BioinformaticsApplication(k=3), store, ds.keys)))

        store = InMemoryStore()
        ds = make_microscopy_dataset(store, n_particles=6, template_points=40, seed=1)
        rows.append(("microscopy", *_stage_times(MicroscopyApplication(restarts=3), store, ds.keys)))
        return rows

    rows = once(run)
    table = format_table(
        ["app", "parse (ms)", "preprocess (ms)", "compare (ms)"],
        [
            [name, f"{p[0]:.2f} ± {p[1]:.2f}", f"{q[0]:.2f} ± {q[1]:.2f}", f"{c[0]:.2f} ± {c[1]:.2f}"]
            for name, p, q, c in rows
        ],
        title="Table 1 (timing half, measured on NumPy kernels)",
    )
    print_block("Table 1 — measured stage times", table)

    by_name = {r[0]: r for r in rows}
    # Structural checks mirroring the paper's characterisation.  The
    # paper's load/compare ratio for forensics is ~138x (10-Mpix JPEG
    # decode vs one NCC); our 128x128 images compress the gap, but the
    # ordering must hold clearly.
    _, p, q, c = by_name["forensics"]
    assert p[0] + q[0] > 4 * c[0]  # loading >> comparing
    _, p, q, c = by_name["microscopy"]
    assert c[0] > 5 * (p[0] + q[0])  # comparing >> loading
