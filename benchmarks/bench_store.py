"""Persistent store warm start — a second session over an unchanged corpus.

The session benchmark (``bench_session.py``) measures reuse *within*
one process: a live session's caches survive between jobs.  The
persistent store (:mod:`repro.store`) extends that across processes —
preprocessed item payloads and memoized pair results land in a shared
``store_dir``, so a brand-new session over the same corpus skips the
load pipeline entirely and, when nothing changed, recomputes **zero**
pairs: the whole job is served out of the memo journal at submit time.

This benchmark runs the same load- and compare-heavy workload in two
back-to-back sessions sharing one store directory and asserts the
acceptance floors: the warm session is at least 5x faster end-to-end,
recomputes zero pairs, and its results are value-identical to the cold
run.

Run:  python -m pytest benchmarks/bench_store.py -q -s
"""

import shutil
import tempfile
import time

import numpy as np

from repro.core.api import Application
from repro.core.session import RocketSession
from repro.core.workload import AllPairs
from repro.data.filestore import InMemoryStore
from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig
from repro.util.tables import format_table

from _common import print_block, write_bench_json

N_ITEMS = 10
T_PARSE = 0.004  # seconds per item parse (CPU stage)
T_PREPROCESS = 0.003  # seconds per item preprocess (device stage)
T_COMPARE = 0.003  # seconds per pair kernel
CONFIG = dict(
    n_devices=2,
    device_cache_slots=24,
    host_cache_slots=32,
    leaf_size=2,
    seed=17,
    watchdog_seconds=120.0,
)


class ExpensiveApp(Application):
    """Every stage costs real time, so stored state is worth real time."""

    def file_name(self, key):
        return f"{key}.bin"

    def parse(self, key, file_contents):
        time.sleep(T_PARSE)
        return np.frombuffer(file_contents, dtype=np.float64).copy()

    def preprocess(self, key, parsed):
        time.sleep(T_PREPROCESS)
        return parsed * 2.0

    def compare(self, key_a, a, key_b, b):
        time.sleep(T_COMPARE)
        return np.asarray(float(a.sum() * b.sum()))

    def postprocess(self, key_a, key_b, raw):
        return float(raw)


def make_corpus():
    store = InMemoryStore()
    keys = []
    for i in range(N_ITEMS):
        key = f"item{i:02d}"
        store.write(f"{key}.bin", np.full(256, float(i + 1)).tobytes())
        keys.append(key)
    return store, keys


def run_session(store, keys, store_dir):
    """One fresh session (cold process state) against the shared store."""
    runtime = LocalRocketRuntime(
        ExpensiveApp(), store, RocketConfig(store_dir=store_dir, **CONFIG)
    )
    session = RocketSession._wrap(runtime)
    try:
        t0 = time.perf_counter()
        results = session.submit(AllPairs(keys)).result()
        elapsed = time.perf_counter() - t0
        memo = session.metrics()["store"]["memo"]
        return elapsed, results, memo
    finally:
        session.close()


def test_warm_store_session_recomputes_nothing(once):
    """Second session over an unchanged corpus: >= 5x, zero recomputes."""
    store_dir = tempfile.mkdtemp(prefix="bench-store-")
    measured = {}

    def run_both():
        store, keys = make_corpus()
        measured["cold_s"], cold_results, cold_memo = run_session(
            store, keys, store_dir
        )
        measured["cold_memo"] = cold_memo
        measured["cold_results"] = cold_results

        # A brand-new store over the same bytes: nothing survives from
        # the first session except the store directory.
        store2, keys2 = make_corpus()
        measured["warm_s"], warm_results, warm_memo = run_session(
            store2, keys2, store_dir
        )
        measured["warm_memo"] = warm_memo
        measured["warm_results"] = warm_results

    try:
        once(run_both)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    cold_memo, warm_memo = measured["cold_memo"], measured["warm_memo"]
    recomputed = warm_memo["misses"]
    speedup = measured["cold_s"] / measured["warm_s"]
    rows = [
        [
            "cold session",
            f"{measured['cold_s']:.3f} s",
            cold_memo["misses"],
            cold_memo["hits"],
        ],
        [
            "warm session",
            f"{measured['warm_s']:.3f} s",
            recomputed,
            warm_memo["hits"],
        ],
    ]
    print_block(
        f"Persistent store warm start ({N_ITEMS} items, "
        f"{cold_memo['misses']} pairs, parse {1e3 * T_PARSE:.0f} ms + "
        f"preprocess {1e3 * T_PREPROCESS:.0f} ms + compare "
        f"{1e3 * T_COMPARE:.0f} ms)",
        format_table(
            ["execution", "wall time", "pairs computed", "memo hits"],
            rows,
            title=f"cross-session speedup {speedup:.2f}x",
        ),
    )

    write_bench_json(
        "store",
        {
            "cold_s": measured["cold_s"],
            "warm_s": measured["warm_s"],
            "speedup": speedup,
            "cold_pairs_computed": cold_memo["misses"],
            "warm_pairs_recomputed": recomputed,
            "warm_memo_hits": warm_memo["hits"],
            "warm_jobs_short_circuited": warm_memo["jobs_short_circuited"],
            "n_items": N_ITEMS,
        },
    )

    # Value-identical to the cold run, pair for pair.
    cold = {(a, b): v for a, b, v in measured["cold_results"].items()}
    warm = {(a, b): v for a, b, v in measured["warm_results"].items()}
    assert warm == cold
    # The acceptance bars: zero recomputed pairs, >= 5x end-to-end.
    assert recomputed == 0, f"warm session recomputed {recomputed} pairs"
    assert warm_memo["jobs_short_circuited"] == 1
    assert speedup >= 5.0, f"warm session only {speedup:.2f}x faster than cold"
