"""Fig. 13 (heterogeneous throughput) and Fig. 14 (per-GPU timeline).

The Section 6.5 platform: node I (K20m), node II (GTX980 + TitanX
Pascal), node III (2x RTX 2080 Ti), node IV (GTX Titan + TitanX
Pascal) — 7 GPUs spanning 4 generations.

Fig. 13 shapes: each node's standalone throughput reflects its GPUs
(node III fastest, node I slowest); the combined 4-node run reaches at
least the sum of the individual nodes (and can exceed it thanks to the
distributed cache).

Fig. 14 shapes (microscopy, combined run): all GPUs stay busy to the
end (balanced finish times), and faster GPUs sustain proportionally
higher pair rates.
"""

import numpy as np
import pytest

from repro.sim.cluster import ClusterSpec
from repro.sim.rocketsim import RocketSimConfig, run_simulation
from repro.util.tables import format_table

from _common import SCALED_APPS, print_block, scale_cluster


def _node_specs(scale):
    full = scale_cluster(ClusterSpec.das5_heterogeneous(), scale)
    singles = [
        scale_cluster(ClusterSpec(nodes=(ns,)), scale) for ns in ClusterSpec.das5_heterogeneous().nodes
    ]
    return full, singles


@pytest.mark.parametrize("name", ["forensics", "microscopy"])
def test_fig13_heterogeneous_throughput(once, name):
    app = SCALED_APPS[name]
    full, singles = _node_specs(app.scale)

    def run_all():
        # Compute-bound microscopy: cap in-flight jobs so a slow GPU
        # cannot hoard ~1-2 s comparisons into an end-of-run tail — at
        # full scale that tail is negligible (the paper's Fig. 14 run
        # takes ~25 min), at n=48 it would dominate.
        jobs = 4 if name == "microscopy" else 64
        cfg = RocketSimConfig(
            seed=2,
            device_cache_slots=app.device_slots,
            host_cache_slots=app.host_slots,
            concurrent_jobs=jobs,
        )
        individual = [run_simulation(spec, app.profile, cfg, seed=2) for spec in singles]
        combined = run_simulation(full, app.profile, cfg, seed=2)
        return individual, combined

    individual, combined = once(run_all)
    rows = []
    for spec, rep in zip(singles, individual):
        rows.append([spec.nodes[0].name, "+".join(spec.nodes[0].gpus), f"{rep.throughput:.1f}"])
    total = sum(r.throughput for r in individual)
    rows.append(["sum of nodes", "", f"{total:.1f}"])
    rows.append(["all 4 nodes", "7 GPUs", f"{combined.throughput:.1f}"])
    table = format_table(
        ["node", "GPUs", "pairs/s"], rows, title=f"Fig. 13 — {name} heterogeneous throughput"
    )
    print_block(f"Fig. 13 — {name}", table)

    thr = [r.throughput for r in individual]
    # Node III (2x RTX 2080 Ti) is the fastest, node I (K20m) the slowest.
    assert thr[2] == max(thr)
    assert thr[0] == min(thr)
    # The combined run achieves at least ~the sum of the parts (the
    # paper often sees slightly more, thanks to the distributed cache).
    assert combined.throughput > 0.85 * total


def test_fig14_throughput_over_time(once):
    app = SCALED_APPS["microscopy"]
    full, _ = _node_specs(app.scale)

    def run():
        cfg = RocketSimConfig(
            seed=3,
            device_cache_slots=app.device_slots,
            host_cache_slots=app.host_slots,
            record_throughput=True,
            throughput_window=60.0,
            concurrent_jobs=4,  # see test_fig13: bounds the drain tail
        )
        return run_simulation(full, app.profile, cfg, seed=3)

    report = once(run)
    rows = []
    rates = {}
    finish = {}
    for lane, series in report.throughput_series.items():
        rates[lane] = series.overall_rate()
        finish[lane] = series.times[-1] if series.times else 0.0
        rows.append([lane, series.count, f"{rates[lane]:.3f}", f"{finish[lane]:.1f}"])
    table = format_table(
        ["GPU", "pairs", "avg pairs/s", "last completion (s)"],
        rows,
        title="Fig. 14 — per-GPU processing over the combined microscopy run",
    )
    print_block("Fig. 14", table)

    def lane_of(model):
        return next(lane for lane in rates if model in lane)

    # Faster GPUs sustain higher rates.
    assert rates[lane_of("RTX2080Ti")] > rates[lane_of("K20m")]
    # All GPUs finish at roughly the same time (balanced workload): the
    # paper's "all nodes finish at roughly the same time".
    finishes = np.array(list(finish.values()))
    assert finishes.min() > 0.85 * finishes.max()
    # Rolling series exists and peaks above zero for every GPU.
    for series in report.throughput_series.values():
        _, rate = series.series(step=report.runtime / 50, end=report.runtime)
        assert rate.max() > 0
