"""Pytest configuration for the benchmark harness.

Experiments are expensive (seconds each), so every benchmark runs with
``rounds=1, iterations=1`` via the ``once`` helper — pytest-benchmark
still records the wall time, but the experiment is executed exactly
once and its printed table is the artefact of interest.
"""

import sys
from pathlib import Path

import pytest

# Make the sibling `_common` module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture
def once(benchmark):
    """Run ``fn`` exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)

    return runner
