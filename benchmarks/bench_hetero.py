"""Heterogeneous scheduling — uniform vs. speed-aware policy (Section 6.5).

Unlike the ``bench_fig*`` experiments (simulated time), this benchmark
exercises the *real* threaded runtime on a skewed two-device mix: a
reference-speed GPU next to one running at a quarter speed (the
``VirtualDevice`` pads kernel wall time accordingly).  The comparison
kernel sleeps a fixed interval, so the workload is kernel-bound and the
scheduling policy is the only variable:

- ``uniform`` — the paper's baseline: randomized victim selection,
  whole-block steals, equal job admission on every device.  The slow
  device keeps committing full batches of serialized kernel work, and
  the run tail waits on its backlog.
- ``speed`` — the heterogeneity-aware policy: speed-proportional
  initial partitioning, victims ranked by estimated remaining work,
  steal sizes and per-device job admission scaled by the speed ratio.

The run summaries also show the online-calibrated performance model's
predicted-vs-measured time and system efficiency (the paper's Table 2 /
Fig. 13 evaluation, live).

Run:  python -m pytest benchmarks/bench_hetero.py -q -s
"""

import time

import numpy as np

from repro.core.api import Application
from repro.data.filestore import InMemoryStore
from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig
from repro.scheduling.workstealing import StealPolicy
from repro.util.tables import format_table

from _common import print_block, write_bench_json

N_ITEMS = 10
T_CMP = 0.012  # seconds per comparison kernel at reference speed
SPEEDS = (1.0, 0.25)  # the skewed device mix of the acceptance scenario
CONFIG = dict(
    n_devices=2,
    device_cache_slots=16,
    host_cache_slots=32,
    concurrent_jobs=8,
    leaf_size=2,
    seed=11,
    watchdog_seconds=120.0,
    device_speed_factors=SPEEDS,
)


class SleepCompareApp(Application):
    """Kernel-bound toy app: compare costs a fixed sleep, loads are free."""

    def file_name(self, key):
        return f"{key}.bin"

    def parse(self, key, file_contents):
        return np.frombuffer(file_contents, dtype=np.float64).copy()

    def preprocess(self, key, parsed):
        return parsed

    def compare(self, key_a, a, key_b, b):
        time.sleep(T_CMP)
        return np.asarray(float(a.sum() + b.sum()))

    def postprocess(self, key_a, key_b, raw):
        return float(raw)


def make_workload():
    store = InMemoryStore()
    keys = []
    for i in range(N_ITEMS):
        key = f"item{i:02d}"
        store.write(f"{key}.bin", np.full(4, float(i + 1)).tobytes())
        keys.append(key)
    return store, keys


def run_policy(store, keys, policy):
    runtime = LocalRocketRuntime(
        SleepCompareApp(), store, RocketConfig(steal_policy=policy, **CONFIG)
    )
    results = runtime.run(keys)
    assert results.is_complete()
    return runtime.last_stats


def test_speed_aware_beats_uniform_on_skewed_mix(once):
    """Speed-aware scheduling >= 1.3x faster on a (1.0, 0.25) device mix."""
    store, keys = make_workload()
    stats = {}

    def run_both():
        # Uniform first: any cache warm-up penalty lands on the baseline's
        # side of the comparison, not the policy under test.
        stats[StealPolicy.UNIFORM] = run_policy(store, keys, StealPolicy.UNIFORM)
        stats[StealPolicy.SPEED] = run_policy(store, keys, StealPolicy.SPEED)

    once(run_both)

    rows = []
    for policy, st in stats.items():
        rows.append([
            policy.value,
            f"{st.runtime:.3f} s",
            f"{st.predicted_runtime:.3f} s",
            f"{st.model_efficiency:.1%}",
            " / ".join(f"{d}:{c}" for d, c in sorted(st.pairs_per_device.items())),
            st.local_steals,
        ])
    speedup = stats[StealPolicy.UNIFORM].runtime / stats[StealPolicy.SPEED].runtime
    print_block(
        "Heterogeneous scheduling (2 devices, speeds 1.0 / 0.25)",
        format_table(
            ["policy", "measured", "predicted", "efficiency", "pairs per device", "steals"],
            rows,
            title=f"{len(keys)} items, {len(keys) * (len(keys) - 1) // 2} pairs, "
            f"t_cmp={1e3 * T_CMP:.0f} ms; speed-aware speedup {speedup:.2f}x",
        ),
    )

    write_bench_json(
        "hetero",
        {
            "speedup": speedup,
            "policies": {
                policy.value: {
                    "runtime_s": st.runtime,
                    "predicted_runtime_s": st.predicted_runtime,
                    "model_efficiency": st.model_efficiency,
                    "local_steals": st.local_steals,
                    "pairs_per_device": dict(st.pairs_per_device),
                }
                for policy, st in stats.items()
            },
        },
    )

    fast, slow = (f"gpu{d}" for d in range(2))
    sp = stats[StealPolicy.SPEED]
    # The fast device must carry the bulk of the pairs under the
    # speed-aware policy (its speed share is 80%).
    assert sp.pairs_per_device[fast] > sp.pairs_per_device[slow]
    # Online calibration measured the compare kernel and produced a
    # usable prediction for the run.
    assert sp.calibration.cmp_count == sp.n_pairs
    assert sp.predicted_runtime > 0
    assert 0 < sp.model_efficiency
    # The acceptance bar: >= 1.3x over uniform scheduling.
    assert speedup >= 1.3, f"speed-aware speedup only {speedup:.2f}x"
