"""Multi-job fair sharing — small urgent job co-scheduled with a giant.

The scheduler redesign exists for exactly one scenario: a small
high-priority query submitted to a busy session.  Under the historical
FIFO policy it waits for the entire incumbent job — its latency is the
big job's runtime, no matter how few pairs it needs.  Under the FAIR
policy the scheduler multiplexes both jobs over the same live engine,
granting the small job its weighted share of device time, so it
finishes in roughly its own solo runtime while the big job continues
around it.

This benchmark runs both schedules over an identical compute-heavy
workload and asserts the two acceptance floors:

- the small job's submit-to-done latency improves >= 3x vs FIFO;
- total throughput (both jobs done) stays within 10% of serial — fair
  sharing must not burn the win on scheduler overhead.

Run:  python -m pytest benchmarks/bench_multijob.py -q -s
"""

import time

import numpy as np

from repro.core.api import Application
from repro.core.workload import AllPairs
from repro.data.filestore import InMemoryStore
from repro.runtime.localrocket import LocalRocketRuntime, RocketConfig
from repro.util.tables import format_table

from _common import print_block, write_bench_json

N_LARGE = 16  # 120 pairs
N_SMALL = 5  # 10 pairs
T_COMPARE = 0.004  # seconds per pair kernel: device-bound regime
CONFIG = dict(
    n_devices=1,
    device_cache_slots=24,
    host_cache_slots=32,
    leaf_size=2,
    seed=17,
    watchdog_seconds=120.0,
)

LATENCY_FLOOR = 3.0  # small-job latency win FAIR vs FIFO
THROUGHPUT_SLACK = 1.10  # total runtime FAIR <= 1.10x serial


class ComputeHeavyApp(Application):
    """The kernel dominates: compare sleeps, loads are cheap."""

    def file_name(self, key):
        return f"{key}.bin"

    def parse(self, key, file_contents):
        return np.frombuffer(file_contents, dtype=np.float64).copy()

    def preprocess(self, key, parsed):
        return parsed

    def compare(self, key_a, a, key_b, b):
        time.sleep(T_COMPARE)
        return np.asarray(float(a.sum() * b.sum()))

    def postprocess(self, key_a, key_b, raw):
        return float(raw)


def make_store(n):
    store = InMemoryStore()
    keys = []
    for i in range(n):
        key = f"item{i:02d}"
        store.write(f"{key}.bin", np.full(16, i + 1, dtype=np.float64).tobytes())
        keys.append(key)
    return store, keys


def run_schedule(policy, store, keys):
    """Submit large-then-small under ``policy``; returns the timings."""
    runtime = LocalRocketRuntime(ComputeHeavyApp(), store, RocketConfig(**CONFIG))
    session = runtime.open_session(policy=policy)
    try:
        t0 = time.perf_counter()
        large = session.submit(AllPairs(keys))
        small = session.submit(AllPairs(keys[:N_SMALL]), priority=8.0)
        small.result(timeout=120.0)
        small_latency = time.perf_counter() - t0
        large.result(timeout=120.0)
        total = time.perf_counter() - t0
    finally:
        session.close()
    return {
        "small_latency": small_latency,
        "total": total,
        "small_accounting": small.accounting,
    }


def test_fair_sharing_cuts_small_job_latency(once):
    store, keys = make_store(N_LARGE)

    def experiment():
        fifo = run_schedule("fifo", store, keys)
        fair = run_schedule("fair", store, keys)
        return fifo, fair

    fifo, fair = once(experiment)
    speedup = fifo["small_latency"] / fair["small_latency"]
    throughput_ratio = fair["total"] / fifo["total"]

    rows = [
        ["fifo (serial)", f"{fifo['small_latency']:.3f}", f"{fifo['total']:.3f}", "1.00x"],
        [
            "fair (co-scheduled)",
            f"{fair['small_latency']:.3f}",
            f"{fair['total']:.3f}",
            f"{speedup:.2f}x",
        ],
    ]
    body = "\n".join(
        [
            format_table(
                ["schedule", "small-job latency (s)", "both-jobs total (s)", "latency win"],
                rows,
            ),
            f"small job: {fair['small_accounting'].summary()}",
            f"total-runtime ratio fair/serial: {throughput_ratio:.2f} "
            f"(ceiling {THROUGHPUT_SLACK:.2f})",
        ]
    )
    print_block(
        "Multi-job scheduling: small high-priority job vs a large incumbent", body
    )

    write_bench_json(
        "multijob",
        {
            "fifo_small_latency_s": fifo["small_latency"],
            "fair_small_latency_s": fair["small_latency"],
            "fifo_total_s": fifo["total"],
            "fair_total_s": fair["total"],
            "latency_speedup": speedup,
            "throughput_ratio": throughput_ratio,
            "small_job": fair["small_accounting"].to_dict(),
        },
    )

    assert speedup >= LATENCY_FLOOR, (
        f"fair sharing must cut the small job's latency >= {LATENCY_FLOOR}x "
        f"vs FIFO, measured {speedup:.2f}x"
    )
    assert throughput_ratio <= THROUGHPUT_SLACK, (
        f"fair sharing may cost at most {(THROUGHPUT_SLACK - 1):.0%} total "
        f"throughput vs serial, measured {throughput_ratio:.2f}x"
    )
