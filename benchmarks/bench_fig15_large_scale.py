"""Fig. 15 — large-scale run on Cartesius (up to 48 nodes / 96 K40m GPUs).

The paper runs the bioinformatics application on all 6818 UniProt
reference bacteria proteomes, scaling from 1 node (2 GPUs) to 48 nodes
(96 GPUs).  Shapes to reproduce:

- run time falls from hours to minutes (here: scaled units);
- speedup stays (super-)linear to 96 GPUs thanks to the distributed
  cache;
- R falls dramatically with node count (paper: 31.9 -> 2.7, a 11.8x
  reduction);
- system efficiency stays high throughout.

Scale: n = 250 of 6818 proteomes (s = 0.037); the Cartesius host cache
(80 GB -> 561 slots at full scale) scales to 20 slots per node, i.e.
the same 8.2% per-node coverage as the paper.  The forwarding bound is
h = 3 here (the paper ran h = 1): at reduced scale host caches churn
through their working set ~1/s times faster relative to the re-request
interval, so the single most-recent candidate is stale far more often
than at paper scale; allowing three candidates restores the effective
remote-hit ratio the paper's h = 1 achieves (see EXPERIMENTS.md).
"""

import pytest

from repro.sim.cluster import ClusterSpec
from repro.sim.rocketsim import RocketSimConfig, run_simulation
from repro.sim.workload import BIOINFORMATICS, scaled_profile
from repro.util.tables import format_table

from _common import print_block, scale_cluster

N_ITEMS = 250
FULL_N = 6818
NODE_COUNTS = (1, 4, 12, 24, 48)


def test_fig15_cartesius_scaling(once):
    s = N_ITEMS / FULL_N
    # The paper's full-scale run uses all 6818 proteomes with the same
    # per-item costs as Table 1's 2500-proteome profile.
    from dataclasses import replace

    base = replace(BIOINFORMATICS, n_items=FULL_N)
    profile = scaled_profile(base, N_ITEMS)
    host_slots = max(3, round(80e9 / base.slot_size * s))  # 80 GB host cache
    dev_slots = 8  # floored (see _common.ScaledApp) from 75 * s

    def sweep():
        out = []
        for n_nodes in NODE_COUNTS:
            spec = scale_cluster(ClusterSpec.cartesius(n_nodes), s)
            cfg = RocketSimConfig(
                seed=4, device_cache_slots=dev_slots, host_cache_slots=host_slots, max_hops=3
            )
            out.append(run_simulation(spec, profile, cfg, seed=4))
        return out

    reports = once(sweep)
    t1 = reports[0].runtime
    rows = []
    for n_nodes, rep in zip(NODE_COUNTS, reports):
        rows.append(
            [
                n_nodes,
                2 * n_nodes,
                f"{rep.runtime:.1f}",
                f"{t1 / rep.runtime:.2f}x",
                f"{rep.reuse_factor:.2f}",
                f"{rep.efficiency:.0%}",
            ]
        )
    table = format_table(
        ["nodes", "GPUs", "run time (s)", "speedup", "R", "efficiency"],
        rows,
        title="Fig. 15 — bioinformatics on Cartesius (2x K40m per node)",
    )
    print_block("Fig. 15", table)

    first, last = reports[0], reports[-1]
    # R must fall dramatically (paper: 11.8x from 1 to 48 nodes).
    assert first.reuse_factor / last.reuse_factor > 4.0
    # Speedup at 48 nodes is (super-)linear, as in the paper: the
    # single-node run is throttled by its high R, the 48-node run is not.
    assert t1 / last.runtime > 0.9 * 48
    # Run time drops by more than an order of magnitude.
    assert last.runtime < t1 / 30
    # Efficiency stays high throughout and *rises* with scale.
    assert all(rep.efficiency > 0.6 for rep in reports)
    assert last.efficiency > first.efficiency
