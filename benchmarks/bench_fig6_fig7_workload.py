"""Fig. 6 (trace timeline) and Fig. 7 (comparison-kernel histograms).

Fig. 6: a profiled simulated run of the forensics workload, rendered as
an ASCII timeline — one row per resource thread, showing the GPU lane
saturated while CPU/IO/copy lanes work in the background.

Fig. 7: run-time histograms of the comparison kernel for all three
applications, from both (a) the simulated workload distributions
(Table 1 moments: tight normal for forensics, lognormal for the other
two) and (b) the real NumPy registration kernel for microscopy.  The
shape check is the coefficient of variation: forensics regular,
bioinformatics and microscopy irregular.
"""

import numpy as np

from repro.util.histogram import Histogram, ascii_histogram
from repro.util.trace import ascii_timeline, lane_summary

from _common import SCALED_APPS, print_block, run_scaled


def test_fig6_trace_timeline(once):
    app = SCALED_APPS["forensics"]
    report = once(lambda: run_scaled(app, n_nodes=1, profiling=True))
    trace = report.trace
    assert trace is not None
    # Render a slice of the run (the middle, away from warm-up/drain).
    t1 = trace.makespan()
    text = ascii_timeline(trace, width=100, t0=t1 * 0.4, t1=t1 * 0.5)
    print_block("Fig. 6 — per-thread task timeline (middle 10% of the run)", text)

    summary = lane_summary(trace)
    gpu_lanes = [lane for lane in summary if lane.startswith("GPU")]
    assert gpu_lanes, "no GPU lanes traced"
    # The paper's observation: the GPU stays (near) fully utilised.
    gpu_util = max(summary[lane]["utilization"] for lane in gpu_lanes)
    print(f"GPU utilisation: {gpu_util:.1%}")
    assert gpu_util > 0.8


def test_fig7_kernel_time_histograms(once):
    def sample():
        out = {}
        for name, app in SCALED_APPS.items():
            inst = app.profile.instantiate(seed=3)
            out[name] = np.array([inst.compare_time() for _ in range(4000)])
        return out

    samples = once(sample)
    body = []
    cvs = {}
    for name, xs in samples.items():
        hist = Histogram.from_samples(xs * 1e3, bins=24)
        cvs[name] = hist.coefficient_of_variation()
        body.append(f"--- {name} (ms, CV={cvs[name]:.3f}) ---")
        body.append(ascii_histogram(hist, width=40))
    print_block("Fig. 7 — comparison-kernel run-time histograms", "\n".join(body))

    # Shape: forensics is regular, the other two have heavy tails.
    assert cvs["forensics"] < 0.05
    assert cvs["bioinformatics"] > 0.25
    assert cvs["microscopy"] > 0.4
    # Tail check: for the irregular kernels p99 >> median.
    for name in ("bioinformatics", "microscopy"):
        xs = samples[name]
        assert np.percentile(xs, 99) > 2.0 * np.median(xs)


def test_fig7_real_microscopy_kernel_irregularity(once):
    """The *real* registration kernel shows irregular run times too."""
    import time

    from repro.apps.microscopy.registration import register_pair
    from repro.data.filestore import InMemoryStore
    from repro.data.formats import decode_particle
    from repro.data.synthetic import make_microscopy_dataset

    def measure():
        store = InMemoryStore()
        ds = make_microscopy_dataset(store, n_particles=8, template_points=28, seed=13)
        clouds = [decode_particle(store.read(f"{k}.json"))[0] for k in ds.keys]
        times = []
        for i in range(len(clouds)):
            for j in range(i + 1, len(clouds)):
                t0 = time.perf_counter()
                register_pair(clouds[i], clouds[j], restarts=2, seed=i * 31 + j)
                times.append(time.perf_counter() - t0)
        return np.array(times)

    times = once(measure)
    cv = times.std() / times.mean()
    print_block(
        "Fig. 7 (real kernel) — microscopy registration wall times",
        f"n={len(times)} mean={1e3 * times.mean():.1f} ms  std={1e3 * times.std():.1f} ms  CV={cv:.2f}",
    )
    assert cv > 0.1  # data-dependent, not constant-time
