"""Fig. 11 — distributed-cache hits per hop (h = 3, 16 nodes).

For each application on 16 single-GPU nodes with the forwarding bound
h = 3: the percentage of distributed-cache requests that hit at hop 1,
2, 3, or miss entirely.

Paper shapes: the vast majority of requests either hit at the first
candidate (75-88%) or miss (11-19%); hops 2 and 3 contribute little —
which is why the remaining experiments run with h = 1.
"""

import pytest

from repro.util.tables import format_table

from _common import SCALED_APPS, print_block, run_scaled


@pytest.mark.parametrize("name", ["forensics", "bioinformatics"])
def test_fig11_hits_per_hop(once, name):
    app = SCALED_APPS[name]
    report = once(lambda: run_scaled(app, n_nodes=16, max_hops=3))
    pct = report.hop_stats.percentages()
    table = format_table(
        ["outcome", "percent of requests"],
        [[k, f"{v:.1f}%"] for k, v in pct.items()],
        title=f"Fig. 11 — {name}, 16 nodes, h=3 ({report.hop_stats.requests} requests)",
    )
    print_block(f"Fig. 11 — {name}", table)

    assert report.hop_stats.requests > 0
    # Hop 1 dominates the later hops combined.
    assert pct["hit at hop 1"] > pct["hit at hop 2"] + pct["hit at hop 3"]
    # Hop 1 + misses account for most of the outcomes (paper: ~90%+).
    assert pct["hit at hop 1"] + pct["miss"] > 70.0


def test_fig11_h1_vs_h3_hit_ratio(once):
    """The follow-up claim: h = 1 already captures most of the benefit."""
    app = SCALED_APPS["forensics"]

    def both():
        r1 = run_scaled(app, n_nodes=16, max_hops=1)
        r3 = run_scaled(app, n_nodes=16, max_hops=3)
        return r1, r3

    r1, r3 = once(both)
    ratio_h1 = r1.hop_stats.total_hits / max(r1.hop_stats.requests, 1)
    ratio_h3 = r3.hop_stats.total_hits / max(r3.hop_stats.requests, 1)
    print_block(
        "Fig. 11 follow-up — h=1 vs h=3",
        f"hit ratio h=1: {ratio_h1:.1%}   hit ratio h=3: {ratio_h3:.1%}\n"
        f"run time h=1: {r1.runtime:.2f}s   h=3: {r3.runtime:.2f}s",
    )
    # h=3 helps at most marginally.
    assert ratio_h3 <= ratio_h1 + 0.25
    assert r1.runtime == pytest.approx(r3.runtime, rel=0.2)
